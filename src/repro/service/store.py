"""Content-addressed campaign result store.

Results are keyed by a digest of the *canonical spec JSON* — and a
:class:`~repro.characterization.campaign.CampaignSpec` contains the
seed, module list, experiment kind, and every sweep knob, so two
submissions with identical (spec, seed, modules) resolve to the same
key.  Because every campaign is a deterministic function of its spec
(see docs/CAMPAIGNS.md), a stored result is *the* result: resubmitting a
spec the fleet has already characterized is served straight from the
store as a cache hit, never re-run.

Files on disk are ordinary schema-v2 results files (the exact bytes
:func:`~repro.characterization.campaign.save_results` writes), so a
stored entry can be copied out and fed to ``load_results`` or any
analysis script unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.characterization.campaign import (
    CampaignSpec,
    dumps_results,
    loads_results,
)
from repro.obs import atomic_write_text, get_logger

__all__ = ["spec_key", "ResultStore"]

logger = get_logger("service.store")


def spec_key(spec: CampaignSpec) -> str:
    """Content address of a campaign's results.

    A SHA-256 digest (truncated to 24 hex chars) of the spec serialized
    canonically — sorted keys, no whitespace — so key equality is exactly
    spec equality, independent of field order or formatting in the JSON
    a client submitted.
    """
    canonical = json.dumps(
        dataclasses.asdict(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


class ResultStore:
    """Directory of content-addressed schema-v2 results files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        """Where the results file for ``key`` lives (existing or not)."""
        return self.root / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether results for ``key`` are stored."""
        return self.path(key).exists()

    def keys(self) -> tuple[str, ...]:
        """All stored result keys, sorted."""
        return tuple(sorted(path.stem for path in self.root.glob("*.json")))

    def read_text(self, key: str) -> str:
        """The stored results file verbatim; raises ``KeyError`` if absent."""
        try:
            return self.path(key).read_text()
        except FileNotFoundError:
            raise KeyError(f"no stored results for key {key!r}") from None

    def load(self, key: str) -> tuple[CampaignSpec, list]:
        """Rebuild (spec, records) from a stored entry."""
        return loads_results(self.read_text(key), source=str(self.path(key)))

    def put(self, spec: CampaignSpec, records: list) -> str:
        """Store a campaign's results; returns the content key.

        Identical (spec, seed, modules) submissions collapse onto one
        entry: re-putting an existing key is a no-op (first write wins —
        campaigns are deterministic, so the bytes would be equal anyway).
        The write is atomic, so readers never observe a partial entry.
        """
        key = spec_key(spec)
        path = self.path(key)
        if path.exists():
            logger.info("result store already has %s (dedup)", key)
            return key
        atomic_write_text(path, dumps_results(spec, records))
        logger.info(
            "stored %d records for campaign %r as %s", len(records), spec.name, key
        )
        return key
