"""Content-addressed campaign result store.

Results are keyed by a digest of the *canonical spec JSON* — and a
:class:`~repro.characterization.campaign.CampaignSpec` contains the
seed, module list, experiment kind, and every sweep knob, so two
submissions with identical (spec, seed, modules) resolve to the same
key.  Because every campaign is a deterministic function of its spec
(see docs/CAMPAIGNS.md), a stored result is *the* result: resubmitting a
spec the fleet has already characterized is served straight from the
store as a cache hit, never re-run.

Files on disk are ordinary schema-v2 results files (the exact bytes
:func:`~repro.characterization.campaign.save_results` writes), so a
stored entry can be copied out and fed to ``load_results`` or any
analysis script unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.characterization.campaign import (
    CampaignSpec,
    dumps_results,
    loads_results,
)
from repro.obs import atomic_write_text, get_logger
from repro.testkit.faults import fault_point, fault_write
from repro.testkit.points import SERVICE_STORE_PUT, SERVICE_STORE_READ

__all__ = ["spec_key", "ResultStore"]

logger = get_logger("service.store")


def spec_key(spec: CampaignSpec) -> str:
    """Content address of a campaign's results.

    A SHA-256 digest (truncated to 24 hex chars) of the spec serialized
    canonically — sorted keys, no whitespace — so key equality is exactly
    spec equality, independent of field order or formatting in the JSON
    a client submitted.
    """
    canonical = json.dumps(
        dataclasses.asdict(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


class ResultStore:
    """Directory of content-addressed schema-v2 results files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        """Where the results file for ``key`` lives (existing or not)."""
        return self.root / f"{key}.json"

    def _validated_text(self, key: str) -> str | None:
        """The entry's text if it parses as a results payload, else None.

        A corrupt file (truncated write, bad JSON, missing keys) is
        *quarantined* — renamed to ``<key>.json.corrupt`` — so it can
        never be served as a cache hit again and ``put`` re-creates the
        entry from a fresh run.  The corrupt bytes are kept for
        post-mortems instead of deleted.
        """
        path = self.path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
            for required in ("schema_version", "spec", "records"):
                if required not in payload:
                    raise ValueError(f"payload lacks {required!r}")
        except ValueError as error:
            quarantine = path.with_name(path.name + ".corrupt")
            path.replace(quarantine)
            logger.warning(
                "quarantined corrupt result %s (%s) -> %s", key, error, quarantine
            )
            return None
        return text

    def has(self, key: str) -> bool:
        """Whether *valid* results for ``key`` are stored."""
        return self._validated_text(key) is not None

    def keys(self) -> tuple[str, ...]:
        """All stored result keys, sorted."""
        return tuple(sorted(path.stem for path in self.root.glob("*.json")))

    def read_text(self, key: str) -> str:
        """The stored results file verbatim; raises ``KeyError`` if absent.

        Corrupt entries raise ``KeyError`` too (after being
        quarantined): a damaged cache entry must look like a miss, not
        get served to a client.
        """
        fault_point(SERVICE_STORE_READ)
        text = self._validated_text(key)
        if text is None:
            raise KeyError(f"no stored results for key {key!r}")
        return text

    def load(self, key: str) -> tuple[CampaignSpec, list]:
        """Rebuild (spec, records) from a stored entry."""
        return loads_results(self.read_text(key), source=str(self.path(key)))

    def put(self, spec: CampaignSpec, records: list) -> str:
        """Store a campaign's results; returns the content key.

        Identical (spec, seed, modules) submissions collapse onto one
        entry: re-putting an existing *valid* key is a no-op (first
        write wins — campaigns are deterministic, so the bytes would be
        equal anyway), while a corrupt entry is quarantined and
        replaced.  The write is atomic, so readers never observe a
        partial entry.
        """
        key = spec_key(spec)
        path = self.path(key)
        if self._validated_text(key) is not None:
            logger.info("result store already has %s (dedup)", key)
            return key
        fault_write(
            SERVICE_STORE_PUT,
            lambda text: atomic_write_text(path, text),
            dumps_results(spec, records),
        )
        logger.info(
            "stored %d records for campaign %r as %s", len(records), spec.name, key
        )
        return key
