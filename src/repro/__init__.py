"""RowPress reproduction (ISCA 2023, Luo et al.).

A behavioral reproduction of "RowPress: Amplifying Read Disturbance in
Modern DRAM Chips": a calibrated DDR4 read-disturbance substrate, a
DRAM-Bender-style testing infrastructure, the paper's characterization
experiments, the real-system attack demonstration, and the mitigation
study on a Ramulator-lite performance simulator.

Quick start::

    from repro import build_module, TestingInfrastructure, find_acmin
    from repro.characterization import RowSite, ExperimentConfig

    bench = TestingInfrastructure(build_module("S3"))
    acmin = find_acmin(bench, RowSite(0, 1, 100), t_aggon=7_800.0)
"""

from repro.dram import build_module, build_fleet, DramModule, MODULE_CATALOG
from repro.bender import TestingInfrastructure, Program
from repro.characterization import find_acmin, find_taggonmin, measure_ber

# Single source of truth for the package version: pyproject.toml reads
# it back via `[tool.setuptools.dynamic]`, the CLI via `repro --version`,
# and the campaign service advertises it in `Server:` and `/healthz`.
__version__ = "1.1.0"

__all__ = [
    "build_module",
    "build_fleet",
    "DramModule",
    "MODULE_CATALOG",
    "TestingInfrastructure",
    "Program",
    "find_acmin",
    "find_taggonmin",
    "measure_ber",
    "__version__",
]
