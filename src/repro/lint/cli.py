"""``repro lint`` / ``reprolint``: the static-analysis command line.

Two modes share one flag surface:

* **source mode** (default): lint the given paths (files or directory
  trees) with the rule set from :mod:`repro.lint.rules`; ``--flow``
  additionally runs the whole-program passes from
  :mod:`repro.lint.flow` (cross-file determinism taint, async-safety,
  wire contracts) over the same parsed ASTs;
* **program mode** (``--programs``): build the canonical access patterns
  from :mod:`repro.bender.builder` across boundary on/off times and run
  the static program verifier over each.

``--write-baseline FILE`` snapshots the current findings;
``--baseline FILE`` tolerates exactly those and fails only on new ones
(``--baseline-strict`` also fails on stale entries, making the baseline
shrink-only under CI).

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import units
from repro.lint.baseline import (
    BaselineError,
    compare_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.diagnostics import LintReport
from repro.lint.engine import SourceLinter
from repro.lint.rules import rules_by_code


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to ``parser`` (shared by both entry points)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--programs",
        action="store_true",
        help="verify the builder access patterns instead of linting source",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the whole-program flow passes (taint, async-safety, "
        "wire contracts) across the linted files",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="tolerate the findings recorded in FILE; fail only on new ones",
    )
    parser.add_argument(
        "--baseline-strict",
        action="store_true",
        help="with --baseline, also fail on stale entries (shrink-only)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="snapshot the current findings to FILE and exit 0",
    )


def _select_rules(spec: str | None) -> list | None:
    if spec is None:
        return None
    catalog = rules_by_code()
    selected = []
    for code in (part.strip() for part in spec.split(",")):
        if not code:
            continue
        if code not in catalog:
            known = ", ".join(sorted(catalog))
            raise SystemExit(f"reprolint: unknown rule {code!r} (known: {known})")
        selected.append(catalog[code])
    return selected


def _list_rules() -> int:
    for code, rule in sorted(rules_by_code().items()):
        print(f"{code:26} {rule.description}")
    from repro.lint.flow import FLOW_RULES

    for code, description in sorted(FLOW_RULES.items()):
        print(f"{code:26} {description} [--flow]")
    return 0


def _check_builder_programs(report: LintReport) -> None:
    """Verify every canonical pattern at boundary on/off times."""
    from repro.dram.geometry import RowAddress
    from repro.dram.timing import DDR4_3200W
    from repro.bender.builder import (
        double_sided_pattern,
        onoff_pattern,
        single_sided_pattern,
    )
    from repro.lint.progcheck import check_program

    timing = DDR4_3200W
    low, high = RowAddress(0, 0, 100), RowAddress(0, 0, 102)

    def fitting_count(t_on: float, t_off: float) -> int:
        episode = t_on + t_off
        return max(1, int(units.EXPERIMENT_BUDGET * 0.9 // episode))

    for t_aggon in (timing.tRAS, units.TREFI, units.TAGGON_MAX):
        count = fitting_count(t_aggon, timing.tRP)
        cases = [
            (
                f"single_sided(t_aggon={units.format_time(t_aggon)}, n={count})",
                single_sided_pattern(low, t_aggon, count, timing),
            ),
            (
                f"double_sided(t_aggon={units.format_time(t_aggon)}, n={count})",
                double_sided_pattern(low, high, t_aggon, count, timing),
            ),
        ]
        for t_aggoff in (timing.tRP, units.TREFI):
            # count_per_aggressor: two aggressors double the duration.
            count_onoff = max(1, fitting_count(t_aggon, t_aggoff) // 2)
            cases.append(
                (
                    f"onoff(t_aggon={units.format_time(t_aggon)}, "
                    f"t_aggoff={units.format_time(t_aggoff)}, n={count_onoff})",
                    onoff_pattern([low, high], t_aggon, t_aggoff, count_onoff, timing),
                )
            )
        for label, program in cases:
            result = check_program(program, timing)
            report.programs_checked += 1
            for diagnostic in result.diagnostics:
                # Anchor the finding to the pattern it came from.
                report.diagnostics.append(
                    type(diagnostic)(
                        code=diagnostic.code,
                        message=diagnostic.message,
                        location=f"{label}:{diagnostic.location}",
                        time_ns=diagnostic.time_ns,
                        severity=diagnostic.severity,
                    )
                )


def run_lint(args: argparse.Namespace) -> int:
    """Execute one lint invocation; returns the process exit code."""
    if args.list_rules:
        return _list_rules()
    if args.programs:
        report = LintReport()
        _check_builder_programs(report)
    elif args.flow:
        from repro.lint.flow import load_project, run_flow

        # One shared load: per-file rules and flow passes see the same
        # parsed contexts, so each file is parsed exactly once.
        project = load_project(args.paths)
        linter = SourceLinter(rules=_select_rules(args.rules))
        report = linter.lint_project(project)
        seen = set(report.diagnostics)
        report.diagnostics.extend(
            finding for finding in run_flow(project) if finding not in seen
        )
        report.diagnostics.sort(key=lambda d: (d.path, d.line, d.column, d.rule))
    else:
        linter = SourceLinter(rules=_select_rules(args.rules))
        report = linter.lint_paths(args.paths)
    if args.write_baseline:
        count = write_baseline(Path(args.write_baseline), report.diagnostics)
        print(f"reprolint: wrote {args.write_baseline} ({count} finding(s))")
        return 0
    print(report.render_json() if args.format == "json" else report.render_text())
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as error:
            raise SystemExit(f"reprolint: {error}")
        result = compare_baseline(
            report.diagnostics, baseline, strict=args.baseline_strict
        )
        print(result.render())
        return 0 if result.ok else 1
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    """``reprolint`` console-script entry point."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="static analysis for the RowPress reproduction",
    )
    configure_parser(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
