"""Diagnostic records shared by the source linter and program verifier.

Both engines report problems as small frozen dataclasses with a stable
``code`` (kebab-case rule / check name), a human message, and a location
— a ``path:line:col`` triple for source diagnostics, an instruction path
like ``instructions[0].body[2]`` for program diagnostics.  The reporters
below render either kind as text (one line per finding, grep-friendly)
or as JSON (one object per finding, machine-consumable).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class LintDiagnostic:
    """One source-level finding from a lint rule."""

    rule: str
    message: str
    path: str
    line: int
    column: int = 0
    severity: str = "error"

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return asdict(self)

    def render(self) -> str:
        """``path:line:col: rule: message`` (editor/grep friendly)."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class ProgramDiagnostic:
    """One protocol finding from the static program verifier."""

    code: str
    message: str
    location: str
    time_ns: float | None = None
    severity: str = "error"

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return asdict(self)

    def render(self) -> str:
        """``location: code: message`` (mirrors LintDiagnostic.render)."""
        return f"{self.location}: {self.code}: {self.message}"


@dataclass
class LintReport:
    """Aggregated findings of one lint run (any number of files/programs)."""

    diagnostics: list = field(default_factory=list)
    files_checked: int = 0
    programs_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was recorded."""
        return not any(d.severity == "error" for d in self.diagnostics)

    def extend(self, diagnostics: list) -> None:
        """Fold more findings into the report."""
        self.diagnostics.extend(diagnostics)

    def render_text(self) -> str:
        """One line per finding plus a summary tail line."""
        lines = [diagnostic.render() for diagnostic in self.diagnostics]
        checked = []
        if self.files_checked:
            checked.append(f"{self.files_checked} files")
        if self.programs_checked:
            checked.append(f"{self.programs_checked} programs")
        scope = ", ".join(checked) or "nothing"
        lines.append(
            f"{len(self.diagnostics)} finding(s) in {scope}"
            if self.diagnostics
            else f"clean: {scope} checked"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """The whole report as a JSON document."""
        return json.dumps(
            {
                "ok": self.ok,
                "files_checked": self.files_checked,
                "programs_checked": self.programs_checked,
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=2,
        )
