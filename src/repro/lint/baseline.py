"""Finding baselines: adopt a ruleset now, ratchet findings to zero.

A baseline is a JSON snapshot of the current findings, keyed by
``path::rule`` fingerprints with a count per key.  ``repro lint
--baseline FILE`` then tolerates exactly those findings and fails only
on *new* ones, so a new rule can land with its existing violations
grandfathered while every future change is held to the stricter bar.

``--baseline-strict`` additionally fails on *stale* entries — baseline
counts higher than reality — forcing the file to be rewritten smaller
whenever findings are fixed.  Under strict CI the baseline can only
ever shrink: it ratchets monotonically toward empty.

Line numbers are deliberately not part of the fingerprint: unrelated
edits shift lines constantly, and a baseline that churns on every
commit trains people to regenerate it blindly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.diagnostics import LintDiagnostic

__all__ = [
    "BaselineError",
    "BaselineResult",
    "compare_baseline",
    "fingerprint",
    "fingerprint_counts",
    "load_baseline",
    "write_baseline",
]

_VERSION = 1


class BaselineError(Exception):
    """The baseline file is missing or malformed."""


def fingerprint(diagnostic: LintDiagnostic) -> str:
    """Stable identity of a finding across line drift: ``path::rule``."""
    return f"{diagnostic.path}::{diagnostic.rule}"


def fingerprint_counts(diagnostics: Iterable[LintDiagnostic]) -> dict[str, int]:
    """Findings collapsed to fingerprint -> occurrence count."""
    counts: dict[str, int] = {}
    for diagnostic in diagnostics:
        key = fingerprint(diagnostic)
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def write_baseline(path: str | Path, diagnostics: Iterable[LintDiagnostic]) -> int:
    """Snapshot ``diagnostics`` to ``path``; returns the finding count."""
    counts = fingerprint_counts(diagnostics)
    payload = {"version": _VERSION, "findings": counts}
    Path(path).write_text(json.dumps(payload, indent=1) + "\n")
    return sum(counts.values())


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read a baseline file back to fingerprint counts."""
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError as error:
        raise BaselineError(f"baseline file not found: {path}") from error
    except ValueError as error:
        raise BaselineError(f"baseline file {path} is not valid JSON: {error}") from error
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise BaselineError(
            f"baseline file {path} has unsupported format "
            f"(expected version {_VERSION})"
        )
    findings = payload.get("findings")
    if not isinstance(findings, dict) or not all(
        isinstance(key, str) and isinstance(count, int) and count > 0
        for key, count in findings.items()
    ):
        raise BaselineError(f"baseline file {path} has a malformed findings table")
    return dict(findings)


@dataclass
class BaselineResult:
    """Outcome of holding current findings against a baseline."""

    #: Fingerprints with more findings than the baseline allows, with
    #: the excess count: ``[("src/a.py::flow-…", 2), …]``.
    new: list[tuple[str, int]] = field(default_factory=list)
    #: Baseline entries larger than reality (over-allowance), with the
    #: surplus count.  Failing on these (strict mode) is what makes the
    #: baseline shrink-only.
    stale: list[tuple[str, int]] = field(default_factory=list)
    strict: bool = False

    @property
    def ok(self) -> bool:
        """Whether the comparison passes (strict mode also rejects stale)."""
        return not self.new and not (self.strict and self.stale)

    def render(self) -> str:
        """Human-readable verdict lines."""
        lines: list[str] = []
        for key, excess in self.new:
            lines.append(f"baseline: new finding {key} (+{excess})")
        for key, surplus in self.stale:
            marker = "stale entry" if self.strict else "stale entry (ignored)"
            lines.append(
                f"baseline: {marker} {key} (-{surplus}); "
                "shrink the baseline with --write-baseline"
            )
        if not lines:
            lines.append("baseline: clean (no new findings)")
        return "\n".join(lines)


def compare_baseline(
    diagnostics: Iterable[LintDiagnostic],
    baseline: dict[str, int],
    strict: bool = False,
) -> BaselineResult:
    """Hold ``diagnostics`` against ``baseline``."""
    current = fingerprint_counts(diagnostics)
    result = BaselineResult(strict=strict)
    for key, count in current.items():
        allowed = baseline.get(key, 0)
        if count > allowed:
            result.new.append((key, count - allowed))
    for key, allowed in sorted(baseline.items()):
        count = current.get(key, 0)
        if count < allowed:
            result.stale.append((key, allowed - count))
    return result
