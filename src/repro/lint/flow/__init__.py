"""Whole-program flow analysis on top of the per-file lint engine.

``repro lint --flow`` builds one :class:`ProjectContext` (every file
parsed exactly once, through the engine's shared parse choke point),
derives a project call graph, and runs three cross-file passes:

* interprocedural determinism taint (``flow-nondeterministic-result``),
* async-safety (``flow-blocking-in-async``, ``flow-unpicklable-to-pool``),
* wire contracts (``flow-route-mismatch``).

Findings anchor at the sink / call site / route table, with the full
call chain spelled out in the message, and honor the same
``# reprolint:`` suppression directives as per-file rules — evaluated
against the anchor file only.
"""

from __future__ import annotations

from repro.lint.diagnostics import LintDiagnostic
from repro.lint.flow.asynccheck import (
    RULE_BLOCKING,
    RULE_UNPICKLABLE,
    check_async,
    check_pool_picklability,
)
from repro.lint.flow.callgraph import CallGraph, build_callgraph
from repro.lint.flow.contracts import RULE_ROUTE_MISMATCH, check_contracts
from repro.lint.flow.project import ProjectContext, load_project
from repro.lint.flow.taint import RULE_NONDETERMINISTIC, check_taint

__all__ = [
    "FLOW_RULES",
    "CallGraph",
    "ProjectContext",
    "build_callgraph",
    "load_project",
    "run_flow",
]

#: rule code -> one-line description (mirrors ``Rule.description`` for
#: per-file rules; consumed by ``repro lint --list-rules``).
FLOW_RULES: dict[str, str] = {
    RULE_NONDETERMINISTIC: (
        "nondeterministic data (wall-clock, ad-hoc RNG, environment, "
        "set/dict iteration order) flows into a result payload, "
        "checkpoint, result store, or metrics snapshot"
    ),
    RULE_BLOCKING: (
        "a blocking call is reachable from a service async def without "
        "an asyncio.to_thread()/run_in_executor() hop"
    ),
    RULE_UNPICKLABLE: (
        "a lambda or closure is handed to a process pool and cannot be "
        "pickled to the worker"
    ),
    RULE_ROUTE_MISMATCH: (
        "server routes, client request paths, and documented CLI flags "
        "have drifted out of sync"
    ),
}


def run_flow(project: ProjectContext) -> list[LintDiagnostic]:
    """Run every flow pass over ``project`` and return sorted findings.

    Syntax errors recorded while loading the project are included —
    a file the flow passes could not see is itself a finding.
    """
    graph = build_callgraph(project)
    findings = list(project.errors)
    findings.extend(check_taint(graph))
    findings.extend(check_async(graph))
    findings.extend(check_pool_picklability(graph))
    findings.extend(check_contracts(project))
    kept = [d for d in findings if not project.suppressed(d)]
    kept.sort(key=lambda d: (d.path, d.line, d.column, d.rule))
    return kept
