"""Project-wide context: every file parsed once, plus the import graph.

The flow passes (taint, async-safety, wire contracts) all need to see
*across* files, so a :class:`ProjectContext` holds one parsed
:class:`~repro.lint.engine.FileContext` per file — built through the
engine's single parse choke point (:func:`repro.lint.engine.parse_module`)
so a combined ``repro lint --flow`` run never parses a file twice: the
per-file rules and every flow pass share the same ASTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.diagnostics import LintDiagnostic
from repro.lint.engine import (
    FileContext,
    _iter_python_files,
    build_context,
    syntax_diagnostic,
)

__all__ = ["ProjectContext", "load_project"]


@dataclass
class ProjectContext:
    """Every parsed file of one lint invocation, indexed two ways.

    ``files`` preserves lint order (path string -> context); ``modules``
    maps dotted module names (``repro.service.server``) to the same
    contexts, which is how cross-file passes resolve ``repro.*`` calls.
    Files that failed to parse appear only in ``errors``.
    """

    files: dict[str, FileContext] = field(default_factory=dict)
    modules: dict[str, FileContext] = field(default_factory=dict)
    errors: list[LintDiagnostic] = field(default_factory=list)

    def add(self, context: FileContext) -> None:
        """Index one parsed file."""
        self.files[context.path] = context
        if context.module:
            self.modules[context.module] = context

    def import_graph(self) -> dict[str, set[str]]:
        """Module -> set of project modules it imports (from alias tables).

        Only edges between modules *present in this project* are kept;
        stdlib/numpy imports are not graph nodes.
        """
        graph: dict[str, set[str]] = {}
        for module, context in self.modules.items():
            edges: set[str] = set()
            for target in context.imports.values():
                # "repro.obs.metrics.atomic_write_text" imports the
                # module "repro.obs.metrics"; a bare "repro.obs" import
                # is the module itself.
                for candidate in (target, target.rsplit(".", 1)[0]):
                    if candidate != module and candidate in self.modules:
                        edges.add(candidate)
                        break
            graph[module] = edges
        return graph

    def suppressed(self, diagnostic: LintDiagnostic) -> bool:
        """Whether the *anchor file's* directives silence ``diagnostic``.

        Cross-file findings anchor at the sink (or the async def, or the
        route table), so only a directive in that file counts — a
        ``disable-file`` in an intermediate call-chain file does not
        suppress a chain that merely passes through it.
        """
        context = self.files.get(diagnostic.path)
        if context is None:
            return False
        return context.suppressions.is_suppressed(diagnostic.rule, diagnostic.line)


def load_project(
    paths: Iterable[str | Path],
    sources: dict[str, str] | None = None,
) -> ProjectContext:
    """Parse every python file under ``paths`` into one project context.

    ``sources`` optionally overrides (or extends) file contents by path
    string — used by tests to plant violations without touching disk.
    """
    project = ProjectContext()
    overrides = dict(sources or {})
    for path in _iter_python_files(paths):
        text = overrides.pop(str(path), None)
        if text is None:
            text = path.read_text()
        _load_one(project, text, str(path))
    for path, text in overrides.items():
        _load_one(project, text, path)
    return project


def _load_one(project: ProjectContext, text: str, path: str) -> None:
    try:
        project.add(build_context(text, path))
    except SyntaxError as error:
        project.errors.append(syntax_diagnostic(error, path))
