"""Wire contracts: server routes vs client paths, CLI flags vs docs.

Client/server drift is invisible to per-file linting: the server can
grow a route no client exercises, or a client can request a path the
server never answers, and nothing fails until a live conversation 404s.
This pass extracts both sides statically and reports asymmetry as
``flow-route-mismatch``:

* **routes**: the declarative ``ROUTES`` table in
  :mod:`repro.service.server` (method, ``{param}`` pattern, label) is
  read as an AST literal; request paths come from every
  ``._request(method, path)`` / ``.request(method, path)`` call in
  :mod:`repro.service.client` and :mod:`repro.cli` (f-string
  interpolations normalize to ``{}``, query strings are stripped).
  A client path with no matching route fails, and so does a route no
  typed client ever requests — dead surface is drift too.
* **CLI flags**: every ``--flag`` used in documented invocations of the
  repo's own entry points (``repro …``, ``python -m repro …``,
  ``reprolint …``, ``python tools/…`` lines in ``docs/*.md`` and
  ``README.md``) must be defined by some ``add_argument`` call in the
  project (or in ``tools/``).  Flags of external tools on other command
  lines are ignored.

Both checks gate on their subject being present (a project without the
service modules, or without a docs tree, skips quietly).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.lint.diagnostics import LintDiagnostic
from repro.lint.engine import FileContext, parse_module
from repro.lint.flow.project import ProjectContext

__all__ = ["RULE_ROUTE_MISMATCH", "check_contracts"]

RULE_ROUTE_MISMATCH = "flow-route-mismatch"

_SERVER_MODULE = "repro.service.server"
_CLIENT_MODULES = ("repro.service.client", "repro.cli")

#: Documented command lines whose flags must exist in our parsers.
_COMMAND_PREFIXES = (
    "repro ",
    "python -m repro ",
    "python -m repro.",
    "reprolint",
    "python tools/",
)

_FLAG = re.compile(r"(?<![\w-])--[a-zA-Z][\w-]*")


def check_contracts(project: ProjectContext) -> list[LintDiagnostic]:
    """Run both contract checks (each skips when its subject is absent)."""
    findings = _check_routes(project)
    findings.extend(_check_cli_flags(project))
    return findings


# -- routes -------------------------------------------------------------


def _check_routes(project: ProjectContext) -> list[LintDiagnostic]:
    server = project.modules.get(_SERVER_MODULE)
    clients = [
        project.modules[name] for name in _CLIENT_MODULES if name in project.modules
    ]
    if server is None or not clients:
        return []
    routes = _extract_routes(server)
    if routes is None:
        return []
    routes_node, route_list = routes
    requests = []
    for context in clients:
        requests.extend(_extract_requests(context))

    findings: list[LintDiagnostic] = []
    used: set[tuple[str, str]] = set()
    for method, path, context, node in requests:
        matched = False
        for route_method, pattern, _name in route_list:
            if method == route_method and _pattern_matches(pattern, path):
                used.add((route_method, pattern))
                matched = True
        if not matched:
            findings.append(
                LintDiagnostic(
                    rule=RULE_ROUTE_MISMATCH,
                    message=(
                        f"client requests {method} {path} but the server "
                        "ROUTES table defines no matching route"
                    ),
                    path=context.path,
                    line=node.lineno,
                    column=node.col_offset,
                )
            )
    for route_method, pattern, name in route_list:
        if (route_method, pattern) in used:
            continue
        findings.append(
            LintDiagnostic(
                rule=RULE_ROUTE_MISMATCH,
                message=(
                    f"server route {route_method} {pattern} ({name!r}) is "
                    "never requested by repro.service.client or repro.cli — "
                    "dead surface or a missing client method"
                ),
                path=server.path,
                line=routes_node.lineno,
                column=routes_node.col_offset,
            )
        )
    return findings


def _extract_routes(
    server: FileContext,
) -> tuple[ast.stmt, list[tuple[str, str, str]]] | None:
    """The ``ROUTES`` literal as (assignment node, [(method, pattern, name)])."""
    for stmt in server.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not any(
            isinstance(t, ast.Name) and t.id == "ROUTES" for t in targets
        ):
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        routes: list[tuple[str, str, str]] = []
        for element in value.elts:
            fields: list[ast.expr]
            if isinstance(element, ast.Call):
                fields = list(element.args)
            elif isinstance(element, (ast.Tuple, ast.List)):
                fields = list(element.elts)
            else:
                continue
            constants = [
                f.value
                for f in fields
                if isinstance(f, ast.Constant) and isinstance(f.value, str)
            ]
            if len(constants) >= 3:
                routes.append((constants[0], constants[1], constants[2]))
        return stmt, routes
    return None


def _extract_requests(
    context: FileContext,
) -> list[tuple[str, str, FileContext, ast.Call]]:
    """Every ``(_)request(method, path)`` call with a static method/path."""
    out = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in (
            "_request",
            "request",
        ):
            continue
        if len(node.args) < 2:
            continue
        method_node, path_node = node.args[0], node.args[1]
        if not isinstance(method_node, ast.Constant) or not isinstance(
            method_node.value, str
        ):
            continue
        path = _literal_path(path_node)
        if path is None:
            continue
        out.append((method_node.value.upper(), path, context, node))
    return out


def _literal_path(node: ast.expr) -> str | None:
    """A path literal with f-string holes normalized to ``{}``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.partition("?")[0]
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            elif isinstance(value, ast.FormattedValue):
                parts.append("{}")
            else:
                return None
        return "".join(parts).partition("?")[0]
    return None


def _pattern_matches(pattern: str, path: str) -> bool:
    pattern_segments = [s for s in pattern.split("/") if s]
    path_segments = [s for s in path.split("/") if s]
    if len(pattern_segments) != len(path_segments):
        return False
    for expected, got in zip(pattern_segments, path_segments):
        if expected.startswith("{") and expected.endswith("}"):
            continue  # route parameter: any concrete or ``{}`` segment
        if got != expected:
            return False
    return True


# -- CLI flags vs docs --------------------------------------------------


def _check_cli_flags(project: ProjectContext) -> list[LintDiagnostic]:
    cli = project.modules.get("repro.cli")
    if cli is None:
        return []
    root = _repo_root(cli)
    if root is None:
        return []
    doc_files = sorted((root / "docs").glob("*.md")) if (root / "docs").is_dir() else []
    readme = root / "README.md"
    if readme.is_file():
        doc_files.append(readme)
    if not doc_files:
        return []

    defined = set()
    for context in project.files.values():
        defined |= _defined_flags(context.tree)
    tools_dir = root / "tools"
    if tools_dir.is_dir():
        for tool in sorted(tools_dir.glob("*.py")):
            try:
                defined |= _defined_flags(parse_module(tool.read_text(), str(tool)))
            except SyntaxError:
                continue

    findings: list[LintDiagnostic] = []
    for doc in doc_files:
        for line_number, command in _documented_commands(doc.read_text()):
            for flag in _FLAG.findall(command):
                base = flag
                if base.startswith("--no-") and ("--" + base[5:]) in defined:
                    continue
                if base in defined:
                    continue
                findings.append(
                    LintDiagnostic(
                        rule=RULE_ROUTE_MISMATCH,
                        message=(
                            f"documented flag {flag} (in `{command.strip()}`) "
                            "is not defined by any repro argparse parser"
                        ),
                        path=_display_path(doc),
                        line=line_number,
                    )
                )
    return findings


def _repo_root(cli: FileContext) -> Path | None:
    """Walk up from the CLI module looking for the project root."""
    current = Path(cli.path).resolve().parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def _defined_flags(tree: ast.Module) -> set[str]:
    """Every ``--flag`` string passed to an ``add_argument`` call."""
    flags: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "add_argument"):
            if not (isinstance(func, ast.Attribute) and func.attr == "addoption"):
                continue
        option_strings = [
            arg.value
            for arg in node.args
            if isinstance(arg, ast.Constant)
            and isinstance(arg.value, str)
            and arg.value.startswith("--")
        ]
        flags.update(option_strings)
        boolean_optional = any(
            isinstance(kw.value, (ast.Name, ast.Attribute))
            and str(getattr(kw.value, "attr", getattr(kw.value, "id", "")))
            == "BooleanOptionalAction"
            for kw in node.keywords
            if kw.arg == "action"
        )
        if boolean_optional:
            flags.update("--no-" + flag[2:] for flag in option_strings)
    return flags


def _documented_commands(text: str) -> list[tuple[int, str]]:
    """(line number, command) for documented invocations of our CLIs."""
    out: list[tuple[int, str]] = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line_number = index + 1
        line = lines[index]
        # Fold shell continuations onto one logical command line.
        while line.rstrip().endswith("\\") and index + 1 < len(lines):
            index += 1
            line = line.rstrip()[:-1] + " " + lines[index].strip()
        index += 1
        command = line.strip().lstrip("$").strip()
        if command.startswith(_COMMAND_PREFIXES):
            out.append((line_number, command))
    return out


def _display_path(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)
