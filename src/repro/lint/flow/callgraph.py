"""Project-wide call graph with pragmatic, precision-first resolution.

Built from the ASTs the engine already parsed (one per file), the graph
resolves call expressions to fully-qualified targets:

* direct names through each file's import-alias table (re-export chains
  like ``repro.obs.atomic_write_text`` -> ``repro.obs.metrics.…`` are
  followed through the intermediate module's own alias table);
* ``self.method(...)`` within a class (single-level base lookup);
* attribute calls through lightweight type inference — instance
  attributes typed by ``self.x = ClassName(...)`` / annotated ``__init__``
  parameters, locals typed by constructor calls, annotated returns of
  resolved project calls, ``with Cls() as x``, and ``Path`` arithmetic.

An attribute call that cannot be typed gets **no edge** — the flow
passes favor precision over recall, so an unresolvable receiver never
manufactures a finding.

Calls inside nested functions and lambdas are attributed to the
enclosing function (they run when the enclosing call graph reaches
them), *except* references handed to ``asyncio.to_thread`` /
``run_in_executor`` / pool ``submit``/``map``, which execute off the
event loop and are recorded as :class:`PoolDispatch` entries instead of
edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.engine import FileContext
from repro.lint.flow.project import ProjectContext

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "CallSite",
    "PoolDispatch",
    "CallGraph",
    "build_callgraph",
]

#: Methods of these callables dispatch their function argument to a
#: worker thread — no call edge from the enclosing (possibly async) body.
_THREAD_DISPATCH = {"asyncio.to_thread"}
_THREAD_DISPATCH_ATTRS = {"run_in_executor", "call_soon_threadsafe"}

#: Process-pool entry points whose function argument must be picklable.
_PROCESS_POOLS = {
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
}
_POOL_METHODS = {"submit", "map", "imap", "imap_unordered", "apply_async"}

#: Path-returning ``pathlib.Path`` methods (for local type inference).
_PATH_RETURNING = {
    "with_name",
    "with_suffix",
    "with_stem",
    "joinpath",
    "resolve",
    "absolute",
    "expanduser",
    "rename",
}


@dataclass
class FunctionInfo:
    """One module-level function or class method."""

    qual: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    class_qual: str | None = None

    @property
    def display(self) -> str:
        """Short human name: ``Class.method`` or ``module.func`` tail."""
        if self.class_qual is not None:
            return ".".join(self.qual.rsplit(".", 2)[-2:])
        return self.qual.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class: methods, resolved bases, inferred instance-attr types."""

    qual: str
    module: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved call expression inside a function body."""

    callee: str
    node: ast.Call
    path: str
    line: int
    #: True when the call occurs inside a lambda/def handed to a
    #: thread/process dispatcher — it never runs on the event loop.
    in_executor: bool = False


@dataclass
class PoolDispatch:
    """A function reference handed to a process pool (picklability check)."""

    api: str
    func_arg: ast.expr
    node: ast.Call
    path: str
    line: int
    #: Names of functions defined *inside* the enclosing function; a
    #: reference to one of these is a closure and cannot be pickled.
    nested_names: frozenset[str] = frozenset()


class CallGraph:
    """Functions, classes, and per-function resolved call sites."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self.pool_dispatches: dict[str, list[PoolDispatch]] = {}

    # -- symbol resolution ---------------------------------------------

    def canonicalize(self, name: str) -> str:
        """Follow re-export chains until a defined symbol (or fixpoint)."""
        seen: set[str] = set()
        while name not in self.functions and name not in self.classes:
            if name in seen:
                break
            seen.add(name)
            module, _, tail = name.rpartition(".")
            context = self.project.modules.get(module)
            if context is not None and tail in context.imports:
                name = context.imports[tail]
                continue
            # Maybe the prefix is a re-exported class: canonicalize it
            # and re-attach the attribute (repro.obs.Tracer.now_s).
            if module and "." in module:
                canonical = self.canonicalize(module)
                if canonical != module:
                    name = f"{canonical}.{tail}"
                    continue
            break
        return name

    def resolve_symbol(self, context: FileContext, dotted: str) -> str:
        """A dotted source name -> canonical qual or external dotted name."""
        head, _, rest = dotted.partition(".")
        if head in context.imports:
            base = context.imports[head]
            full = f"{base}.{rest}" if rest else base
        else:
            local = f"{context.module}.{dotted}" if context.module else dotted
            canonical = self.canonicalize(local)
            if canonical in self.functions or canonical in self.classes:
                return canonical
            full = dotted
        return self.canonicalize(full)

    def lookup_method(self, class_qual: str, name: str) -> FunctionInfo | None:
        """Find ``name`` on a class or (recursively) its project bases."""
        seen: set[str] = set()
        stack = [class_qual]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            info = self.classes.get(qual)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(info.bases)
        return None


def build_callgraph(project: ProjectContext) -> CallGraph:
    """Index every function/class, then resolve every call site."""
    graph = CallGraph(project)
    for context in project.files.values():
        _index_file(graph, context)
    for context in project.files.values():
        _resolve_class_attrs(graph, context)
    for info in list(graph.functions.values()):
        _scan_function(graph, info)
    return graph


# -- indexing -----------------------------------------------------------


def _index_file(graph: CallGraph, context: FileContext) -> None:
    for stmt in context.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{context.module}.{stmt.name}"
            graph.functions[qual] = FunctionInfo(
                qual=qual,
                module=context.module,
                path=context.path,
                node=stmt,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
            )
        elif isinstance(stmt, ast.ClassDef):
            class_qual = f"{context.module}.{stmt.name}"
            info = ClassInfo(qual=class_qual, module=context.module, node=stmt)
            graph.classes[class_qual] = info
            for child in stmt.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{class_qual}.{child.name}"
                    method = FunctionInfo(
                        qual=qual,
                        module=context.module,
                        path=context.path,
                        node=child,
                        is_async=isinstance(child, ast.AsyncFunctionDef),
                        class_qual=class_qual,
                    )
                    info.methods[child.name] = method
                    graph.functions[qual] = method


def _resolve_class_attrs(graph: CallGraph, context: FileContext) -> None:
    """Second pass: resolve base classes and infer instance-attr types."""
    for stmt in context.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        info = graph.classes[f"{context.module}.{stmt.name}"]
        for base in stmt.bases:
            dotted = context.dotted_name(base)
            if dotted:
                resolved = graph.resolve_symbol(context, dotted)
                if resolved in graph.classes:
                    info.bases.append(resolved)
        for method in info.methods.values():
            params = _param_types(graph, context, method.node)
            for node in ast.walk(method.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                annotation: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value, annotation = node.target, node.value, node.annotation
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                inferred = None
                if annotation is not None:
                    inferred = _annotation_type(graph, context, annotation)
                if inferred is None and value is not None:
                    inferred = _infer_expr_type(graph, context, value, params)
                if inferred is not None:
                    info.attr_types.setdefault(target.attr, inferred)


def _param_types(
    graph: CallGraph, context: FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
) -> dict[str, str]:
    """Parameter name -> type from annotations (project classes / Path / set)."""
    types: dict[str, str] = {}
    args = node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.annotation is not None:
            inferred = _annotation_type(graph, context, arg.annotation)
            if inferred is not None:
                types[arg.arg] = inferred
    return types


# -- type inference -----------------------------------------------------


def _annotation_type(
    graph: CallGraph, context: FileContext, annotation: ast.expr
) -> str | None:
    """Resolve an annotation expression to a known type qual."""
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        # ``X | None`` (or ``None | X``): the non-None side decides.
        for side in (annotation.left, annotation.right):
            if isinstance(side, ast.Constant) and side.value is None:
                continue
            return _annotation_type(graph, context, side)
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: only the simple-dotted-name form is handled.
        text = annotation.value.strip()
        if text.replace(".", "").replace("_", "").isalnum():
            return _normalize_type(graph, context, text)
        return None
    dotted = context.dotted_name(annotation)
    if dotted is None:
        return None
    return _normalize_type(graph, context, dotted)


def _normalize_type(graph: CallGraph, context: FileContext, dotted: str) -> str | None:
    resolved = graph.resolve_symbol(context, dotted)
    if resolved in graph.classes:
        return resolved
    if resolved in ("pathlib.Path", "pathlib.PurePath", "pathlib.PosixPath"):
        return "pathlib.Path"
    if resolved in ("set", "frozenset"):
        return "set"
    if resolved in _PROCESS_POOLS:
        return resolved
    if resolved == "concurrent.futures.ThreadPoolExecutor":
        return resolved
    if resolved in ("http.client.HTTPConnection", "http.client.HTTPSConnection"):
        return "http.client.HTTPConnection"
    return None


def _infer_expr_type(
    graph: CallGraph,
    context: FileContext,
    expr: ast.expr,
    env: dict[str, str],
    class_info: ClassInfo | None = None,
) -> str | None:
    """Best-effort static type of an expression; None when undecidable."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.Attribute):
        if (
            isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and class_info is not None
        ):
            return _class_attr_type(graph, class_info, expr.attr)
        base = _infer_expr_type(graph, context, expr.value, env, class_info)
        if base in graph.classes:
            return _class_attr_type(graph, graph.classes[base], expr.attr)
        return None
    if isinstance(expr, ast.BinOp):
        # ``Path(x) / "sub"`` stays a Path.
        left = _infer_expr_type(graph, context, expr.left, env, class_info)
        if left == "pathlib.Path":
            return "pathlib.Path"
        return None
    if isinstance(expr, ast.Await):
        return _infer_expr_type(graph, context, expr.value, env, class_info)
    if not isinstance(expr, ast.Call):
        return None
    resolved = _resolve_call_target(graph, context, expr, env, class_info)
    if resolved is None:
        return None
    if resolved in graph.classes:
        return resolved
    if resolved in ("set", "frozenset"):
        return "set"
    info = graph.functions.get(resolved)
    if info is not None and info.node.returns is not None:
        return _annotation_type(
            graph, graph.project.files[info.path], info.node.returns
        )
    if resolved == "pathlib.Path":
        return "pathlib.Path"
    if resolved in _PROCESS_POOLS or resolved == "concurrent.futures.ThreadPoolExecutor":
        return resolved
    if resolved in ("http.client.HTTPConnection", "http.client.HTTPSConnection"):
        return "http.client.HTTPConnection"
    head, _, method = resolved.rpartition(".")
    if head == "pathlib.Path" and method in _PATH_RETURNING:
        return "pathlib.Path"
    return None


#: Path methods that yield more Paths when iterated.
_PATH_ITERATORS = {"glob", "rglob", "iterdir"}


def _element_type(
    graph: CallGraph,
    context: FileContext,
    iterable: ast.expr,
    env: dict[str, str],
    class_info: ClassInfo | None,
) -> str | None:
    """Element type of a for-loop iterable (Path directory listings)."""
    # Unwrap order/materialization wrappers: sorted(x), list(x), reversed(x).
    while (
        isinstance(iterable, ast.Call)
        and isinstance(iterable.func, ast.Name)
        and iterable.func.id in ("sorted", "list", "reversed", "tuple")
        and iterable.args
    ):
        iterable = iterable.args[0]
    if isinstance(iterable, ast.Call):
        resolved = _resolve_call_target(graph, context, iterable, env, class_info)
        if resolved is not None:
            head, _, method = resolved.rpartition(".")
            if head == "pathlib.Path" and method in _PATH_ITERATORS:
                return "pathlib.Path"
    return None


def _class_attr_type(graph: CallGraph, info: ClassInfo, attr: str) -> str | None:
    seen: set[str] = set()
    stack = [info.qual]
    while stack:
        qual = stack.pop()
        if qual in seen:
            continue
        seen.add(qual)
        current = graph.classes.get(qual)
        if current is None:
            continue
        if attr in current.attr_types:
            return current.attr_types[attr]
        stack.extend(current.bases)
    return None


# -- call-site resolution ----------------------------------------------


def _resolve_call_target(
    graph: CallGraph,
    context: FileContext,
    call: ast.Call,
    env: dict[str, str],
    class_info: ClassInfo | None,
) -> str | None:
    """Canonical qual / external dotted name of a call, or None."""
    func = call.func
    if isinstance(func, ast.Name):
        return graph.resolve_symbol(context, func.id)
    if not isinstance(func, ast.Attribute):
        return None
    receiver = func.value
    # self.method(...) / self.attr.method(...)
    if isinstance(receiver, ast.Name) and receiver.id == "self":
        if class_info is not None:
            method = graph.lookup_method(class_info.qual, func.attr)
            if method is not None:
                return method.qual
        return None
    dotted = context.dotted_name(func)
    if dotted is not None and not dotted.startswith("self."):
        head = dotted.partition(".")[0]
        if head not in env:
            head_resolved = graph.resolve_symbol(context, head)
            if (
                head in context.imports
                or head_resolved in graph.functions
                or head_resolved in graph.classes
            ):
                resolved = graph.resolve_symbol(context, dotted)
                if (
                    resolved in graph.functions
                    or resolved in graph.classes
                    or "." in resolved
                ):
                    return resolved
                return None
    receiver_type = _infer_expr_type(graph, context, receiver, env, class_info)
    if receiver_type is None:
        return None
    if receiver_type in graph.classes:
        method = graph.lookup_method(receiver_type, func.attr)
        if method is not None:
            return method.qual
        return None
    return f"{receiver_type}.{func.attr}"


def _scan_function(graph: CallGraph, info: FunctionInfo) -> None:
    """Build the local type env, then record every call site."""
    context = graph.project.files[info.path]
    class_info = graph.classes.get(info.class_qual) if info.class_qual else None
    env = _param_types(graph, context, info.node)

    # One linear pre-pass over assignments for local variable types.
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                inferred = _infer_expr_type(
                    graph, context, node.value, env, class_info
                )
                if inferred is not None:
                    env[target.id] = inferred
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            inferred = _annotation_type(graph, context, node.annotation)
            if inferred is not None:
                env[node.target.id] = inferred
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            if isinstance(node.optional_vars, ast.Name):
                inferred = _infer_expr_type(
                    graph, context, node.context_expr, env, class_info
                )
                if inferred is not None:
                    env[node.optional_vars.id] = inferred
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                element = _element_type(graph, context, node.iter, env, class_info)
                if element is not None:
                    env[node.target.id] = element

    nested = frozenset(
        child.name
        for child in ast.walk(info.node)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        and child is not info.node
    )

    sites: list[CallSite] = []
    dispatches: list[PoolDispatch] = []

    def record_calls(node: ast.AST, in_executor: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Call):
                _record_call_site(child, in_executor)
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # Nested bodies run when the enclosing graph reaches
                # them: attribute their calls to this function.
                record_calls(child, in_executor)
                continue
            record_calls(child, in_executor)

    def _record_call_site(call: ast.Call, in_executor: bool) -> None:
        resolved = _resolve_call_target(graph, context, call, env, class_info)
        if resolved is not None:
            sites.append(
                CallSite(
                    callee=resolved,
                    node=call,
                    path=info.path,
                    line=call.lineno,
                    in_executor=in_executor,
                )
            )
        dispatched = _dispatched_args(graph, context, call, resolved, env, class_info)
        if dispatched is not None:
            api, args, is_process = dispatched
            for arg in args:
                if is_process:
                    dispatches.append(
                        PoolDispatch(
                            api=api,
                            func_arg=arg,
                            node=call,
                            path=info.path,
                            line=call.lineno,
                            nested_names=nested,
                        )
                    )
                # The dispatched callable runs off the loop: calls in a
                # lambda/def literal argument are executor-side.
                if isinstance(arg, ast.Lambda):
                    record_calls(arg, True)
            remaining = [a for a in call.args if a not in args] + [
                k.value for k in call.keywords if k.value not in args
            ]
            for other in remaining:
                if isinstance(other, ast.Call):
                    _record_call_site(other, in_executor)
                else:
                    record_calls(other, in_executor)
            return
        record_calls(call, in_executor)

    record_calls(info.node, False)
    graph.calls[info.qual] = sites
    graph.pool_dispatches[info.qual] = dispatches


def _dispatched_args(
    graph: CallGraph,
    context: FileContext,
    call: ast.Call,
    resolved: str | None,
    env: dict[str, str],
    class_info: ClassInfo | None,
) -> tuple[str, list[ast.expr], bool] | None:
    """(api name, dispatched function args, needs-pickling) or None."""
    if resolved in _THREAD_DISPATCH:
        return resolved, call.args[:1], False
    if resolved in _PROCESS_POOLS:
        init = [k.value for k in call.keywords if k.arg == "initializer"]
        return resolved, init, True
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr in _THREAD_DISPATCH_ATTRS:
        # loop.run_in_executor(None, f, ...): f is the second positional.
        index = 1 if func.attr == "run_in_executor" else 0
        return f"*.{func.attr}", call.args[index : index + 1], False
    if func.attr in _POOL_METHODS:
        receiver_type = _infer_expr_type(graph, context, func.value, env, class_info)
        if receiver_type in _PROCESS_POOLS:
            return f"{receiver_type}.{func.attr}", call.args[:1], True
        if receiver_type == "concurrent.futures.ThreadPoolExecutor":
            return f"{receiver_type}.{func.attr}", call.args[:1], False
    return None
