"""Async-safety: blocking calls reachable from service event-loop code.

The service promises that one asyncio event loop serves every client
while campaign engines grind on worker threads/processes.  A blocking
primitive (``time.sleep``, sync socket/file IO, ``subprocess``, the
blocking :class:`~repro.service.client.ServiceClient`) reached from any
``async def`` in ``repro.service`` without an executor hop therefore
stalls every connection at once.  This pass walks the call graph from
each service ``async def`` through *synchronous* project functions and
reports the first blocking primitive on each path as
``flow-blocking-in-async``.

Call edges through ``asyncio.to_thread`` / ``run_in_executor`` /
pool ``submit`` are not followed (the dispatched callable runs off the
loop), and traversal never descends into other ``async def``\\ s — each
is its own analysis root, so one blocking chain is reported exactly
once, at the nearest async frontier.

``flow-unpicklable-to-pool`` is the sibling check: lambdas and nested
(closure) functions handed to a process pool cannot be pickled to the
worker, so the submission would fail at runtime — flagged statically at
the dispatch site.
"""

from __future__ import annotations

import ast

from repro.lint.diagnostics import LintDiagnostic
from repro.lint.flow.callgraph import CallGraph

__all__ = [
    "RULE_BLOCKING",
    "RULE_UNPICKLABLE",
    "BLOCKING_CALLS",
    "check_async",
    "check_pool_picklability",
]

RULE_BLOCKING = "flow-blocking-in-async"
RULE_UNPICKLABLE = "flow-unpicklable-to-pool"

#: Primitives that block the calling thread.  Deliberately data-plane
#: IO only: fast metadata ops (mkdir/unlink/stat) during startup or
#: cleanup are not flagged.
BLOCKING_CALLS: frozenset[str] = frozenset(
    {
        "time.sleep",
        "open",
        "input",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.socket",
        "socket.create_connection",
        "http.client.HTTPConnection",
        "http.client.HTTPSConnection",
        "http.client.HTTPConnection.request",
        "http.client.HTTPConnection.getresponse",
        "urllib.request.urlopen",
        "pathlib.Path.read_text",
        "pathlib.Path.read_bytes",
        "pathlib.Path.write_text",
        "pathlib.Path.write_bytes",
        "pathlib.Path.open",
        "pathlib.Path.glob",
        "pathlib.Path.rglob",
        "pathlib.Path.iterdir",
        "repro.service.client.ServiceClient._request",
    }
)

#: Module prefixes whose ``async def``\ s are analysis roots.
_ASYNC_ROOT_PREFIX = "repro.service"


def _blocking_chain(
    graph: CallGraph,
    qual: str,
    memo: dict[str, tuple[str, ...] | None],
    stack: set[str],
) -> tuple[str, ...] | None:
    """Shortest-discovered chain from ``qual`` to a blocking primitive."""
    if qual in memo:
        return memo[qual]
    if qual in stack:
        return None  # recursion cycle: no new information on this path
    stack.add(qual)
    found: tuple[str, ...] | None = None
    for site in graph.calls.get(qual, ()):
        if site.in_executor:
            continue
        if site.callee in BLOCKING_CALLS:
            found = (f"{site.callee}() ({site.path}:{site.line})",)
            break
        callee = graph.functions.get(site.callee)
        if callee is None or callee.is_async:
            continue
        sub = _blocking_chain(graph, site.callee, memo, stack)
        if sub is not None:
            found = (f"{callee.display} ({site.path}:{site.line})", *sub)
            break
    stack.discard(qual)
    memo[qual] = found
    return found


def check_async(graph: CallGraph) -> list[LintDiagnostic]:
    """Report blocking primitives reachable from service async defs."""
    findings: list[LintDiagnostic] = []
    memo: dict[str, tuple[str, ...] | None] = {}
    for qual, info in graph.functions.items():
        if not info.is_async or not info.module.startswith(_ASYNC_ROOT_PREFIX):
            continue
        for site in graph.calls.get(qual, ()):
            if site.in_executor:
                continue
            chain: tuple[str, ...] | None = None
            if site.callee in BLOCKING_CALLS:
                chain = (f"{site.callee}() ({site.path}:{site.line})",)
            else:
                callee = graph.functions.get(site.callee)
                if callee is not None and not callee.is_async:
                    sub = _blocking_chain(graph, site.callee, memo, set())
                    if sub is not None:
                        chain = (
                            f"{callee.display} ({site.path}:{site.line})",
                            *sub,
                        )
            if chain is None:
                continue
            findings.append(
                LintDiagnostic(
                    rule=RULE_BLOCKING,
                    message=(
                        f"async {info.display}() blocks the event loop: "
                        f"{' -> '.join(chain)}; wrap the call in "
                        "asyncio.to_thread() or run_in_executor()"
                    ),
                    path=info.path,
                    line=site.line,
                    column=site.node.col_offset,
                )
            )
    return findings


def check_pool_picklability(graph: CallGraph) -> list[LintDiagnostic]:
    """Flag lambdas/closures handed to a process pool (unpicklable)."""
    findings: list[LintDiagnostic] = []
    for qual, dispatches in graph.pool_dispatches.items():
        info = graph.functions[qual]
        for dispatch in dispatches:
            arg = dispatch.func_arg
            problem: str | None = None
            if isinstance(arg, ast.Lambda):
                problem = "a lambda"
            elif isinstance(arg, ast.Name) and arg.id in dispatch.nested_names:
                problem = f"the nested function `{arg.id}`"
            if problem is None:
                continue
            findings.append(
                LintDiagnostic(
                    rule=RULE_UNPICKLABLE,
                    message=(
                        f"{problem} is handed to {dispatch.api}() in "
                        f"{info.display}(); closures cannot be pickled to a "
                        "worker process — use a module-level function"
                    ),
                    path=dispatch.path,
                    line=dispatch.line,
                    column=dispatch.node.col_offset,
                )
            )
    return findings
