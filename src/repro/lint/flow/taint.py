"""Interprocedural determinism taint: sources -> result-path sinks.

The reproduction's headline claim is that results are a deterministic
function of ``(spec, seed)``.  This pass proves the interprocedural
half of that statically: no wall-clock read, ad-hoc RNG draw,
``os.environ`` lookup, or unsorted-set iteration order may reach a
serialization/result sink (``results_payload``, checkpoint appends,
``ResultStore.put``, metric snapshot merges) — even through a chain of
helper calls in other files.

Semantics (chosen to keep the pass precise, not maximally paranoid):

* a function's *return value* is tainted when any return expression
  contains a source call, a tainted local, or a call to a
  tainted-returning project function (computed as a fixpoint over the
  call graph);
* taint flows through assignments, containers, f-strings, arithmetic,
  and project-function calls with tainted arguments — but **not** into
  callee parameters (a sink called with its own untainted parameters is
  clean) and **not** through class constructors (field-insensitive:
  storing a timestamp on an object is only flagged where the timestamp
  itself reaches a sink);
* ``sorted(...)`` launders only the ``set-order`` taint kind.

Findings anchor at the **sink call site**, with the full call chain in
the message, so a suppression directive in the sink's file governs the
diagnostic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.diagnostics import LintDiagnostic
from repro.lint.engine import FileContext
from repro.lint.flow.callgraph import CallGraph, ClassInfo, FunctionInfo

__all__ = ["RULE_NONDETERMINISTIC", "check_taint"]

RULE_NONDETERMINISTIC = "flow-nondeterministic-result"

#: Call target -> taint kind.
SOURCE_CALLS: dict[str, str] = {
    "time.time": "wall-clock",
    "time.time_ns": "wall-clock",
    "time.monotonic": "wall-clock",
    "time.monotonic_ns": "wall-clock",
    "time.perf_counter": "wall-clock",
    "time.perf_counter_ns": "wall-clock",
    "time.process_time": "wall-clock",
    "datetime.datetime.now": "wall-clock",
    "datetime.datetime.utcnow": "wall-clock",
    "datetime.datetime.today": "wall-clock",
    "datetime.date.today": "wall-clock",
    "repro.obs.clock.monotonic_s": "wall-clock",
    "uuid.uuid4": "rng",
    "uuid.uuid1": "rng",
    "os.urandom": "rng",
    "secrets.token_hex": "rng",
    "secrets.token_bytes": "rng",
    "os.getenv": "environ",
}

#: Prefixes whose every call is a source of the given kind.
SOURCE_PREFIXES: tuple[tuple[str, str], ...] = (
    ("random.", "rng"),
    ("numpy.random.", "rng"),
)

#: Result/serialization paths: any tainted *argument* is a finding.
SINK_CALLS: frozenset[str] = frozenset(
    {
        "repro.characterization.campaign.results_payload",
        "repro.characterization.campaign.dumps_results",
        "repro.characterization.campaign.save_results",
        "repro.service.store.ResultStore.put",
        "repro.characterization.engine.CampaignCheckpoint.record_shard",
        "repro.characterization.engine.CampaignCheckpoint.record_failure",
        "repro.characterization.engine.CampaignCheckpoint._append",
        "repro.obs.metrics.MetricsRegistry.merge_snapshot",
    }
)

#: Pure value-passthrough callables: taint flows through their args.
_PASSTHROUGH = frozenset(
    {
        "str",
        "int",
        "float",
        "round",
        "abs",
        "min",
        "max",
        "repr",
        "format",
        "list",
        "tuple",
        "dict",
        "copy.copy",
        "copy.deepcopy",
        "json.dumps",
        "json.loads",
    }
)

_SET_ORDER = "set-order"


@dataclass(frozen=True)
class _Taint:
    """One taint kind with the call chain that produced it."""

    kind: str
    chain: tuple[str, ...]


def _frame(label: str, path: str, line: int) -> str:
    return f"{label} ({path}:{line})"


class _FunctionAnalysis:
    """One linear pass over a function body, tracking local taint."""

    def __init__(self, pass_: "TaintPass", info: FunctionInfo) -> None:
        self.pass_ = pass_
        self.info = info
        self.graph = pass_.graph
        self.context: FileContext = pass_.graph.project.files[info.path]
        self.class_info: ClassInfo | None = (
            pass_.graph.classes.get(info.class_qual) if info.class_qual else None
        )
        self.env: dict[str, set[_Taint]] = {}
        self.returns: set[_Taint] = set()
        self.findings: list[LintDiagnostic] = []

    # -- driver --------------------------------------------------------

    def run(self, report_sinks: bool) -> set[_Taint]:
        """Walk the function body; returns the taint of its return values."""
        self._walk_body(self.info.node.body, report_sinks)
        return self.returns

    def _walk_body(self, body: list[ast.stmt], report: bool) -> None:
        for stmt in body:
            self._walk_stmt(stmt, report)

    def _walk_stmt(self, stmt: ast.stmt, report: bool) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._expr(stmt.value, report)
            for target in stmt.targets:
                self._bind(target, stmt.value, taint)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, stmt.value, self._expr(stmt.value, report))
        elif isinstance(stmt, ast.AugAssign):
            taint = self._expr(stmt.value, report)
            if isinstance(stmt.target, ast.Name):
                self.env.setdefault(stmt.target.id, set()).update(taint)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self._expr(stmt.value, report)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value, report)
        elif isinstance(stmt, ast.For):
            taint = set(self._expr(stmt.iter, report))
            if self._is_set_typed(stmt.iter):
                taint.add(
                    _Taint(
                        _SET_ORDER,
                        (
                            _frame(
                                "iteration over an unordered set",
                                self.info.path,
                                stmt.iter.lineno,
                            ),
                        ),
                    )
                )
            self._bind(stmt.target, stmt.iter, taint)
            self._walk_body(stmt.body, report)
            self._walk_body(stmt.orelse, report)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test, report)
            self._walk_body(stmt.body, report)
            self._walk_body(stmt.orelse, report)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test, report)
            self._walk_body(stmt.body, report)
            self._walk_body(stmt.orelse, report)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._expr(item.context_expr, report)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, item.context_expr, taint)
            self._walk_body(stmt.body, report)
        elif isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, report)
            for handler in stmt.handlers:
                self._walk_body(handler.body, report)
            self._walk_body(stmt.orelse, report)
            self._walk_body(stmt.finalbody, report)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr(stmt.exc, report)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs: walk for sink calls; their locals are isolated.
            saved, self.env = self.env, dict(self.env)
            self._walk_body(stmt.body, report)
            self.env = saved
        elif isinstance(stmt, (ast.AsyncFor,)):
            self._expr(stmt.iter, report)
            self._walk_body(stmt.body, report)
        # Pass/Break/Continue/Import/Global/Delete/ClassDef: nothing flows.

    def _bind(self, target: ast.expr, value: ast.expr, taint: set[_Taint]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            values = (
                value.elts
                if isinstance(value, (ast.Tuple, ast.List))
                and len(value.elts) == len(target.elts)
                else None
            )
            for index, element in enumerate(target.elts):
                if values is not None:
                    self._bind(element, values[index], self._expr(values[index], False))
                else:
                    self._bind(element, value, taint)
        # Attribute/Subscript targets: field-insensitive, taint dropped.

    # -- expressions ---------------------------------------------------

    def _expr(self, expr: ast.expr, report: bool) -> set[_Taint]:
        """Taint of an expression (checking sinks along the way)."""
        if isinstance(expr, ast.Name):
            return set(self.env.get(expr.id, ()))
        if isinstance(expr, ast.Constant):
            return set()
        if isinstance(expr, ast.Call):
            return self._call(expr, report)
        if isinstance(expr, ast.Attribute):
            resolved = self.context.resolve(expr)
            if resolved is not None and resolved.startswith("os.environ"):
                return {
                    _Taint(
                        "environ",
                        (_frame("os.environ", self.info.path, expr.lineno),),
                    )
                }
            return self._expr(expr.value, report)
        if isinstance(expr, ast.Await):
            return self._expr(expr.value, report)
        if isinstance(expr, ast.Subscript):
            return self._expr(expr.value, report) | self._expr(expr.slice, report)
        if isinstance(expr, ast.BinOp):
            return self._expr(expr.left, report) | self._expr(expr.right, report)
        if isinstance(expr, ast.UnaryOp):
            return self._expr(expr.operand, report)
        if isinstance(expr, ast.BoolOp):
            out: set[_Taint] = set()
            for value in expr.values:
                out |= self._expr(value, report)
            return out
        if isinstance(expr, ast.Compare):
            self._expr(expr.left, report)
            for comparator in expr.comparators:
                self._expr(comparator, report)
            return set()
        if isinstance(expr, ast.IfExp):
            self._expr(expr.test, report)
            return self._expr(expr.body, report) | self._expr(expr.orelse, report)
        if isinstance(expr, (ast.JoinedStr,)):
            out = set()
            for value in expr.values:
                out |= self._expr(value, report)
            return out
        if isinstance(expr, ast.FormattedValue):
            return self._expr(expr.value, report)
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            out = set()
            for element in expr.elts:
                if isinstance(element, ast.Starred):
                    element = element.value
                out |= self._expr(element, report)
            return out
        if isinstance(expr, ast.Dict):
            out = set()
            for key in expr.keys:
                if key is not None:
                    out |= self._expr(key, report)
            for value in expr.values:
                out |= self._expr(value, report)
            return out
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comprehension(expr, (expr.elt,), report)
        if isinstance(expr, ast.DictComp):
            return self._comprehension(expr, (expr.key, expr.value), report)
        if isinstance(expr, ast.Starred):
            return self._expr(expr.value, report)
        if isinstance(expr, ast.Lambda):
            return set()
        return set()

    def _comprehension(
        self, expr: ast.expr, elements: tuple[ast.expr, ...], report: bool
    ) -> set[_Taint]:
        out: set[_Taint] = set()
        for generator in expr.generators:  # type: ignore[attr-defined]
            out |= self._expr(generator.iter, report)
            if self._is_set_typed(generator.iter):
                out.add(
                    _Taint(
                        _SET_ORDER,
                        (
                            _frame(
                                "iteration over an unordered set",
                                self.info.path,
                                generator.iter.lineno,
                            ),
                        ),
                    )
                )
        for element in elements:
            out |= self._expr(element, report)
        return out

    def _call(self, call: ast.Call, report: bool) -> set[_Taint]:
        resolved = self.pass_.resolution(self.info, call)
        arg_taints: list[tuple[object, set[_Taint]]] = []
        for index, arg in enumerate(call.args, start=1):
            value = arg.value if isinstance(arg, ast.Starred) else arg
            arg_taints.append((index, self._expr(value, report)))
        for keyword in call.keywords:
            arg_taints.append(
                (keyword.arg or "**", self._expr(keyword.value, report))
            )
        merged: set[_Taint] = set()
        for _slot, taint in arg_taints:
            merged |= taint

        if resolved is None:
            return set()

        if report and resolved in SINK_CALLS:
            self._report_sink(call, resolved, arg_taints)

        kind = SOURCE_CALLS.get(resolved)
        if kind is None and resolved.startswith("os.environ"):
            kind = "environ"
        if kind is None:
            for prefix, prefix_kind in SOURCE_PREFIXES:
                if resolved.startswith(prefix):
                    kind = prefix_kind
                    break
        if kind is not None:
            return merged | {
                _Taint(
                    kind,
                    (_frame(f"{resolved}()", self.info.path, call.lineno),),
                )
            }

        if resolved == "sorted":
            return {t for t in merged if t.kind != _SET_ORDER}
        if resolved in ("list", "tuple") and call.args:
            first = call.args[0]
            if self._is_set_typed(first):
                merged.add(
                    _Taint(
                        _SET_ORDER,
                        (
                            _frame(
                                "materializing an unordered set",
                                self.info.path,
                                call.lineno,
                            ),
                        ),
                    )
                )
            return merged
        if resolved in ("set", "frozenset"):
            return merged
        if resolved in _PASSTHROUGH:
            return merged

        callee = self.graph.functions.get(resolved)
        if callee is not None:
            summary = self.pass_.summaries.get(resolved, set())
            out = set(merged)
            for taint in summary:
                out.add(
                    _Taint(
                        taint.kind,
                        (
                            _frame(callee.display, self.info.path, call.lineno),
                            *taint.chain,
                        ),
                    )
                )
            return out
        if resolved in self.graph.classes:
            return set()  # constructors: field-insensitive
        return set()

    def _report_sink(
        self,
        call: ast.Call,
        resolved: str,
        arg_taints: list[tuple[object, set[_Taint]]],
    ) -> None:
        sink_name = resolved.rsplit(".", 1)[-1]
        for slot, taints in arg_taints:
            for taint in sorted(taints, key=lambda t: (t.kind, t.chain)):
                where = (
                    f"argument {slot}"
                    if isinstance(slot, int)
                    else f"argument {slot!r}"
                )
                self.findings.append(
                    LintDiagnostic(
                        rule=RULE_NONDETERMINISTIC,
                        message=(
                            f"{sink_name}() {where} carries nondeterministic "
                            f"{taint.kind} data: {' -> '.join(taint.chain)}"
                        ),
                        path=self.info.path,
                        line=call.lineno,
                        column=call.col_offset,
                    )
                )

    # -- helpers -------------------------------------------------------

    def _is_set_typed(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            resolved = self.pass_.resolution(self.info, expr)
            return resolved in ("set", "frozenset")
        if isinstance(expr, ast.Name):
            return self.pass_.local_type(self.info, expr.id) == "set"
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and self.class_info is not None
            ):
                return (
                    self.pass_.attr_type(self.class_info, expr.attr) == "set"
                )
        return False


class TaintPass:
    """Fixpoint return-taint summaries, then one reporting pass."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: dict[str, set[_Taint]] = {}
        self._resolutions: dict[str, dict[int, str]] = {}
        self._local_types: dict[str, dict[str, str]] = {}
        for qual, sites in graph.calls.items():
            self._resolutions[qual] = {id(site.node): site.callee for site in sites}

    def resolution(self, info: FunctionInfo, call: ast.Call) -> str | None:
        """The call graph's resolved callee for ``call`` inside ``info``."""
        return self._resolutions.get(info.qual, {}).get(id(call))

    def local_type(self, info: FunctionInfo, name: str) -> str | None:
        """Inferred class type of a local/parameter name, lazily cached."""
        types = self._local_types.get(info.qual)
        if types is None:
            from repro.lint.flow.callgraph import _param_types

            context = self.graph.project.files[info.path]
            types = _param_types(self.graph, context, info.node)
            self._infer_locals(info, types)
            self._local_types[info.qual] = types
        return types.get(name)

    def attr_type(self, class_info: ClassInfo, attr: str) -> str | None:
        """Declared/assigned class type of ``self.<attr>`` on ``class_info``."""
        from repro.lint.flow.callgraph import _class_attr_type

        return _class_attr_type(self.graph, class_info, attr)

    def _infer_locals(self, info: FunctionInfo, env: dict[str, str]) -> None:
        from repro.lint.flow.callgraph import _infer_expr_type

        context = self.graph.project.files[info.path]
        class_info = (
            self.graph.classes.get(info.class_qual) if info.class_qual else None
        )
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    inferred = _infer_expr_type(
                        self.graph, context, node.value, env, class_info
                    )
                    if inferred is not None:
                        env[target.id] = inferred

    def run(self) -> list[LintDiagnostic]:
        """Fixpoint the return summaries, then report source->sink flows."""
        # Fixpoint over return summaries (chains stabilize quickly; the
        # pass cap guards pathological recursion).
        for _ in range(6):
            changed = False
            for qual, info in self.graph.functions.items():
                analysis = _FunctionAnalysis(self, info)
                returns = analysis.run(report_sinks=False)
                kinds_before = {t.kind for t in self.summaries.get(qual, set())}
                kinds_after = {t.kind for t in returns}
                if kinds_after != kinds_before:
                    changed = True
                self.summaries[qual] = _one_chain_per_kind(returns)
            if not changed:
                break
        findings: list[LintDiagnostic] = []
        for info in self.graph.functions.values():
            analysis = _FunctionAnalysis(self, info)
            analysis.run(report_sinks=True)
            findings.extend(analysis.findings)
        return findings


def _one_chain_per_kind(taints: set[_Taint]) -> set[_Taint]:
    """Keep one (deterministically chosen) witness chain per taint kind."""
    best: dict[str, _Taint] = {}
    for taint in sorted(taints, key=lambda t: (t.kind, len(t.chain), t.chain)):
        best.setdefault(taint.kind, taint)
    return set(best.values())


def check_taint(graph: CallGraph) -> list[LintDiagnostic]:
    """Run the determinism taint pass over a built call graph."""
    return TaintPass(graph).run()
