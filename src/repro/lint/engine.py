"""Lint engine: per-file AST dispatch, suppressions, import resolution.

The engine parses each file once, builds a :class:`FileContext` (source
lines, an import alias table, suppression directives), then walks the
AST a single time, dispatching every node to the rules that declared
interest in its type.  Rules never re-walk the tree themselves.

Suppression directives are ordinary comments:

* ``# reprolint: disable=rule-a,rule-b`` — suppress on that line,
* ``# reprolint: disable`` — suppress every rule on that line,
* ``# reprolint: disable-next=rule-a`` — suppress on the following line,
* ``# reprolint: disable-file=rule-a`` — suppress in the whole file.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.diagnostics import LintDiagnostic, LintReport

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-next|-file)?)\s*(?:=\s*(?P<rules>[\w\-*?, ]+))?"
)

#: Sentinel rule-set meaning "every rule".
_ALL = frozenset({"*"})


@dataclass
class Suppressions:
    """Parsed ``# reprolint:`` directives of one file."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    whole_file: set[str] = field(default_factory=set)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is silenced at ``line``.

        Directive entries are matched as ``fnmatch`` patterns, so
        ``disable-file=flow-*`` silences every cross-file flow rule.
        """
        if _matches(self.whole_file, rule):
            return True
        return _matches(self.by_line.get(line, frozenset()), rule)

    def add(self, kind: str, rules: frozenset[str], line: int) -> None:
        """Record one directive found at ``line``."""
        if kind == "disable-file":
            self.whole_file.update(rules)
        else:
            target = line + 1 if kind == "disable-next" else line
            self.by_line[target] = self.by_line.get(target, frozenset()) | rules


def _matches(patterns: Iterable[str], rule: str) -> bool:
    """Whether any suppression pattern (exact or fnmatch glob) hits ``rule``."""
    for pattern in patterns:
        if pattern == rule or pattern == "*":
            return True
        if ("*" in pattern or "?" in pattern) and fnmatch.fnmatchcase(rule, pattern):
            return True
    return False


def parse_suppressions(source: str) -> Suppressions:
    """Extract directives from comment tokens (strings never match)."""
    suppressions = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if not match:
                continue
            listed = match.group("rules")
            rules = (
                frozenset(part.strip() for part in listed.split(",") if part.strip())
                if listed
                else _ALL
            )
            suppressions.add(match.group("kind"), rules, token.start[0])
    except tokenize.TokenizeError:
        pass  # the AST parse will report the syntax problem
    return suppressions


def _collect_imports(tree: ast.Module, module: str) -> dict[str, str]:
    """Map local alias -> fully qualified imported name.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from repro import
    units`` yields ``{"units": "repro.units"}``; relative imports resolve
    against the linted module's own package.
    """
    table: dict[str, str] = {}
    package_parts = module.split(".")[:-1] if module else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - node.level + 1]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                full = f"{base}.{alias.name}" if base else alias.name
                table[alias.asname or alias.name] = full
    return table


@dataclass
class FileContext:
    """Everything a rule may consult about the file under analysis."""

    path: str
    module: str
    tree: ast.Module
    source: str
    imports: dict[str, str]
    suppressions: Suppressions

    def dotted_name(self, node: ast.AST) -> str | None:
        """``a.b.c`` for a Name/Attribute chain, else None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def resolve(self, node: ast.AST) -> str | None:
        """Fully qualified dotted name of an expression, via the imports."""
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self.imports.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved


def module_name_for(path: Path) -> str:
    """Dotted module name of a file, anchored at the ``repro`` package."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def parse_module(source: str, path: str = "<string>") -> ast.Module:
    """Parse one module's source.

    The single parse choke point: the per-file rule engine and the
    whole-program flow passes both obtain their ASTs through here (via
    :func:`build_context`), so a ``repro lint --flow`` run parses each
    file exactly once — a property tested by monkeypatch-counting this
    function.
    """
    return ast.parse(source)


def build_context(source: str, path: str = "<string>") -> FileContext:
    """Parse ``source`` once and assemble the shared :class:`FileContext`.

    Raises :class:`SyntaxError` for unparsable input; callers turn that
    into a ``syntax-error`` diagnostic (see :func:`syntax_diagnostic`).
    """
    tree = parse_module(source, path)
    module = module_name_for(Path(path))
    return FileContext(
        path=path,
        module=module,
        tree=tree,
        source=source,
        imports=_collect_imports(tree, module),
        suppressions=parse_suppressions(source),
    )


def syntax_diagnostic(error: SyntaxError, path: str) -> LintDiagnostic:
    """The diagnostic form of a failed parse."""
    return LintDiagnostic(
        rule="syntax-error",
        message=str(error.msg),
        path=path,
        line=error.lineno or 1,
        column=error.offset or 0,
    )


class SourceLinter:
    """Runs a set of rules over files or in-memory source."""

    def __init__(self, rules: Sequence | None = None) -> None:
        if rules is None:
            from repro.lint.rules import default_rules

            rules = default_rules()
        self.rules = list(rules)

    # ------------------------------------------------------------------

    def lint_source(self, source: str, path: str = "<string>") -> list[LintDiagnostic]:
        """Lint one in-memory module; ``path`` drives per-package scoping."""
        try:
            context = build_context(source, path)
        except SyntaxError as error:
            return [syntax_diagnostic(error, path)]
        return self.lint_context(context)

    def lint_context(self, context: FileContext) -> list[LintDiagnostic]:
        """Lint an already-parsed file (shares the AST with flow passes)."""
        return self._run(context)

    def lint_file(self, path: Path) -> list[LintDiagnostic]:
        """Lint one file on disk."""
        return self.lint_source(path.read_text(), str(path))

    def lint_paths(self, paths: Iterable[str | Path]) -> LintReport:
        """Lint files and/or directory trees into one report."""
        report = LintReport()
        for path in _iter_python_files(paths):
            report.extend(self.lint_file(path))
            report.files_checked += 1
        report.diagnostics.sort(key=lambda d: (d.path, d.line, d.column, d.rule))
        return report

    def lint_project(self, project) -> LintReport:
        """Per-file rules over an already-loaded project (shared ASTs).

        ``project`` is a :class:`repro.lint.flow.ProjectContext` (typed
        loosely to keep the engine free of a flow dependency).  The flow
        passes reuse the very same contexts, so a combined
        ``repro lint --flow`` run parses each file exactly once.
        """
        report = LintReport()
        report.diagnostics.extend(project.errors)
        for context in project.files.values():
            report.extend(self.lint_context(context))
            report.files_checked += 1
        report.diagnostics.sort(key=lambda d: (d.path, d.line, d.column, d.rule))
        return report

    # ------------------------------------------------------------------

    def _run(self, context: FileContext) -> list[LintDiagnostic]:
        active = [rule for rule in self.rules if rule.applies_to(context)]
        if not active:
            return []
        diagnostics: list[LintDiagnostic] = []
        for rule in active:
            diagnostics.extend(rule.check_module(context))
        dispatch: dict[type, list] = {}
        for rule in active:
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        if dispatch:
            for node in ast.walk(context.tree):
                for rule in dispatch.get(type(node), ()):
                    diagnostics.extend(rule.check(node, context))
        return [
            diagnostic
            for diagnostic in diagnostics
            if not context.suppressions.is_suppressed(diagnostic.rule, diagnostic.line)
        ]


def _iter_python_files(paths: Iterable[str | Path]) -> Iterable[Path]:
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path
