"""Static analysis for the reproduction (source linter + program verifier).

Two dependency-free engines guard the properties the reproduction's
results rest on:

* :mod:`repro.lint.rules` / :mod:`repro.lint.engine` — an AST rule
  framework with codebase-specific rules (seed-tree-only randomness, no
  wall-clock reads in simulated-time code, ``repro.units`` constants for
  known time magnitudes, unit-suffix consistency, no bare ``print()``,
  no mutable defaults, the ``from __future__ import annotations``
  convention) and ``# reprolint: disable=...`` suppressions;
* :mod:`repro.lint.progcheck` — a static verifier that walks DRAM
  command programs (loops included, without unrolling) and rejects
  protocol violations before execution.

Run via ``python -m repro lint`` or the ``reprolint`` console script.
"""

from repro.lint.diagnostics import LintDiagnostic, LintReport, ProgramDiagnostic
from repro.lint.engine import SourceLinter
from repro.lint.progcheck import (
    ProgcheckReport,
    ProgramVerificationError,
    check_program,
    verify_program,
)
from repro.lint.rules import Rule, default_rules, rules_by_code

__all__ = [
    "LintDiagnostic",
    "LintReport",
    "ProgramDiagnostic",
    "SourceLinter",
    "Rule",
    "default_rules",
    "rules_by_code",
    "ProgcheckReport",
    "ProgramVerificationError",
    "check_program",
    "verify_program",
]
