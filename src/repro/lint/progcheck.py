"""Static verifier for DRAM command programs.

``check_program`` symbolically walks a :class:`repro.bender.program.Program`
— including ``Loop`` bodies, **without unrolling** — and reports protocol
violations as structured :class:`ProgramDiagnostic` records before any
cycle is spent executing.  The walk tracks per-(rank, bank) open-row state
and a running time offset; loop bodies are analyzed at most twice (one
entry pass plus one steady-state pass, which is what exposes
cross-iteration hazards such as an ACT landing on a row the previous
iteration left open), then the loop's contribution to the total duration
is multiplied out analytically.

Diagnostic codes:

``double-act``
    ACT on a bank whose row is already open.
``pre-closed-bank``
    PRE on a bank with no open row.
``act-too-soon``
    ACT issued before ``tRP`` elapsed since the bank's last PRE.
``row-open-too-short``
    ACT->PRE interval below ``tRAS`` (the paper's 36 ns floor).
``row-open-too-long``
    ACT->PRE interval beyond the 9 x tREFI postponed-refresh ceiling
    (suppressed when ``refresh_disabled=True``, the §3.1 bench mode).
``access-while-open``
    FillRow/ReadRow on a bank that still has an open row (these model
    self-contained housekeeping operations against a precharged bank).
``row-left-open``
    The program ends (or a finite loop ends) with a row still open.
``over-budget``
    Total duration exceeds the experiment budget (default 60 ms).
``exceeds-refresh-window``
    Total duration exceeds ``tREFW`` while refresh is modeled as active.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.dram.timing import DDR4_3200W, TimingParameters
from repro.lint.diagnostics import ProgramDiagnostic
from repro.bender.executor import FILL_COST, READ_COST
from repro.bender.loops import collapsed_loop_end
from repro.bender.program import (
    Act,
    FillRow,
    Instruction,
    Loop,
    Pre,
    Program,
    ReadRow,
    Wait,
)

_EPSILON = 1e-9


class ProgramVerificationError(Exception):
    """Raised when a program is executed with verification on and fails."""

    def __init__(self, report: "ProgcheckReport") -> None:
        self.report = report
        summary = "; ".join(d.render() for d in report.diagnostics[:5])
        extra = len(report.diagnostics) - 5
        if extra > 0:
            summary += f"; and {extra} more"
        super().__init__(f"program failed static verification: {summary}")


@dataclass
class ProgcheckReport:
    """Verdict of one static program verification."""

    diagnostics: list[ProgramDiagnostic] = field(default_factory=list)
    duration_ns: float = 0.0
    commands: int = 0

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return not any(d.severity == "error" for d in self.diagnostics)

    def codes(self) -> set[str]:
        """The distinct diagnostic codes present."""
        return {diagnostic.code for diagnostic in self.diagnostics}


@dataclass
class _BankState:
    open_row: int | None = None
    act_time: float = 0.0
    pre_time: float = -1e18


class _Walker:
    def __init__(self, timing: TimingParameters, max_row_open: float | None) -> None:
        self.timing = timing
        self.max_row_open = max_row_open
        self.banks: dict[tuple[int, int], _BankState] = {}
        self.diagnostics: list[ProgramDiagnostic] = []
        self.commands = 0

    def _bank(self, rank: int, bank: int) -> _BankState:
        return self.banks.setdefault((rank, bank), _BankState())

    def report(
        self, code: str, message: str, location: str, time_ns: float
    ) -> None:
        self.diagnostics.append(
            ProgramDiagnostic(
                code=code, message=message, location=location, time_ns=time_ns
            )
        )

    # ------------------------------------------------------------------

    def walk(self, instructions: tuple | list, location: str, time_ns: float) -> float:
        for index, instruction in enumerate(instructions):
            time_ns = self.step(instruction, f"{location}[{index}]", time_ns)
        return time_ns

    def step(self, instruction: Instruction, location: str, time_ns: float) -> float:
        self.commands += 1
        if isinstance(instruction, Wait):
            return time_ns + instruction.duration
        if isinstance(instruction, Act):
            return self._step_act(instruction, location, time_ns)
        if isinstance(instruction, Pre):
            return self._step_pre(instruction, location, time_ns)
        if isinstance(instruction, (FillRow, ReadRow)):
            return self._step_access(instruction, location, time_ns)
        if isinstance(instruction, Loop):
            self.commands -= 1  # loops are structure, not commands
            return self._step_loop(instruction, location, time_ns)
        raise TypeError(f"unknown instruction {instruction!r}")

    # ------------------------------------------------------------------

    def _step_act(self, instruction: Act, location: str, time_ns: float) -> float:
        address = instruction.address
        state = self._bank(address.rank, address.bank)
        if state.open_row is not None:
            self.report(
                "double-act",
                f"ACT row {address.row} while row {state.open_row} is open on "
                f"bank ({address.rank}, {address.bank}) — missing PRE",
                location,
                time_ns,
            )
        elif time_ns - state.pre_time < self.timing.tRP - _EPSILON:
            gap = time_ns - state.pre_time
            self.report(
                "act-too-soon",
                f"ACT only {units.format_time(gap)} after PRE; tRP is "
                f"{units.format_time(self.timing.tRP)}",
                location,
                time_ns,
            )
        state.open_row = address.row
        state.act_time = time_ns
        return time_ns

    def _step_pre(self, instruction: Pre, location: str, time_ns: float) -> float:
        state = self._bank(instruction.rank, instruction.bank)
        if state.open_row is None:
            self.report(
                "pre-closed-bank",
                f"PRE on bank ({instruction.rank}, {instruction.bank}) with no "
                "open row",
                location,
                time_ns,
            )
            return time_ns
        open_time = time_ns - state.act_time
        if open_time < self.timing.tRAS - _EPSILON:
            self.report(
                "row-open-too-short",
                f"row {state.open_row} open for {units.format_time(open_time)}; "
                f"tRAS is {units.format_time(self.timing.tRAS)}",
                location,
                time_ns,
            )
        if (
            self.max_row_open is not None
            and open_time > self.max_row_open + _EPSILON
        ):
            self.report(
                "row-open-too-long",
                f"row {state.open_row} open for {units.format_time(open_time)}; "
                "the postponed-refresh ceiling is "
                f"{units.format_time(self.max_row_open)}",
                location,
                time_ns,
            )
        state.open_row = None
        state.pre_time = time_ns
        return time_ns

    def _step_access(
        self, instruction: FillRow | ReadRow, location: str, time_ns: float
    ) -> float:
        address = instruction.address
        state = self._bank(address.rank, address.bank)
        kind = "FillRow" if isinstance(instruction, FillRow) else "ReadRow"
        if state.open_row is not None:
            self.report(
                "access-while-open",
                f"{kind} on row {address.row} while row {state.open_row} is "
                f"open on bank ({address.rank}, {address.bank}); precharge "
                "first",
                location,
                time_ns,
            )
        return time_ns + (FILL_COST if isinstance(instruction, FillRow) else READ_COST)

    def _step_loop(self, loop: Loop, location: str, time_ns: float) -> float:
        if loop.count == 0:
            return time_ns
        body_location = f"{location}.body"
        after_first = self.walk(loop.body, body_location, time_ns)
        if loop.count == 1:
            return after_first
        seen_in_first = {(d.code, d.location) for d in self.diagnostics}
        # Steady-state pass: re-walk the body once from the state the first
        # iteration left behind; this exposes cross-iteration hazards
        # (double-ACT on a row left open, too-short PRE->ACT gaps across
        # the loop boundary) without unrolling.  Findings that merely
        # repeat a first-pass diagnostic at the same spot are dropped.
        checkpoint = len(self.diagnostics)
        after_second = self.walk(loop.body, body_location, after_first)
        self.diagnostics[checkpoint:] = [
            diagnostic
            for diagnostic in self.diagnostics[checkpoint:]
            if (diagnostic.code, diagnostic.location) not in seen_in_first
        ]
        return collapsed_loop_end(after_first, after_second, loop.count)


def check_program(
    program: Program,
    timing: TimingParameters = DDR4_3200W,
    *,
    budget: float | None = units.EXPERIMENT_BUDGET,
    refresh_disabled: bool = False,
    max_row_open: float | None = None,
) -> ProgcheckReport:
    """Statically verify ``program`` against the DRAM command protocol.

    ``budget`` bounds the total program duration (None disables the
    check); ``refresh_disabled=True`` models the paper's §3.1 bench mode,
    lifting the per-row refresh-window and 9 x tREFI open-time ceilings;
    ``max_row_open`` overrides the open-time ceiling explicitly.
    """
    if max_row_open is None and not refresh_disabled:
        max_row_open = timing.max_postponed_refresh_window
    walker = _Walker(timing, max_row_open)
    end_time = walker.walk(list(program), "instructions", 0.0)
    for (rank, bank), state in sorted(walker.banks.items()):
        if state.open_row is not None:
            walker.report(
                "row-left-open",
                f"program ends with row {state.open_row} open on bank "
                f"({rank}, {bank})",
                "instructions",
                end_time,
            )
    if budget is not None and end_time > budget + _EPSILON:
        walker.report(
            "over-budget",
            f"program runs {units.format_time(end_time)}; the experiment "
            f"budget is {units.format_time(budget)}",
            "instructions",
            end_time,
        )
    if not refresh_disabled and end_time > timing.tREFW + _EPSILON:
        walker.report(
            "exceeds-refresh-window",
            f"program runs {units.format_time(end_time)}; every row must be "
            f"refreshed within {units.format_time(timing.tREFW)}",
            "instructions",
            end_time,
        )
    return ProgcheckReport(
        diagnostics=walker.diagnostics,
        duration_ns=end_time,
        commands=walker.commands,
    )


def verify_program(
    program: Program,
    timing: TimingParameters = DDR4_3200W,
    **kwargs,
) -> ProgcheckReport:
    """Like :func:`check_program` but raises on any error diagnostic."""
    report = check_program(program, timing, **kwargs)
    if not report.ok:
        raise ProgramVerificationError(report)
    return report
