"""Codebase-specific lint rules.

Every rule is a small class: a stable kebab-case ``code``, the AST node
types it wants dispatched (``node_types``), an ``applies_to`` path
filter, and ``check``/``check_module`` hooks returning diagnostics.
The catalog (with rationale and fix guidance) lives in docs/LINTING.md.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro import units
from repro.lint.diagnostics import LintDiagnostic
from repro.lint.engine import FileContext
from repro.obs.names import METRIC_NAMES
from repro.testkit.points import FAULT_POINTS


class Rule:
    """Base class: one statically checkable property of the codebase."""

    code: str = ""
    description: str = ""
    node_types: tuple[type, ...] = ()

    def applies_to(self, context: FileContext) -> bool:
        """Whether this rule runs on the given file at all."""
        return True

    def check_module(self, context: FileContext) -> Iterable[LintDiagnostic]:
        """Whole-module checks, run once per file before node dispatch."""
        return ()

    def check(self, node: ast.AST, context: FileContext) -> Iterable[LintDiagnostic]:
        """Per-node check; ``node`` is one of ``node_types``."""
        return ()

    def found(
        self, context: FileContext, node: ast.AST, message: str
    ) -> LintDiagnostic:
        """Build a diagnostic anchored at ``node``."""
        return LintDiagnostic(
            rule=self.code,
            message=message,
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
        )


def _module_parts(context: FileContext) -> tuple[str, ...]:
    return tuple(context.module.split("."))


class NoBarePrintRule(Rule):
    """Diagnostics must go through ``repro.obs`` logging, not print()."""

    code = "no-bare-print"
    description = (
        "bare print() in library code; use repro.obs logging (CLI modules "
        "and the analysis package, whose printed output is the product, "
        "are exempt)"
    )
    node_types = (ast.Call,)

    def applies_to(self, context: FileContext) -> bool:
        """Everything except CLI modules and the analysis package."""
        parts = _module_parts(context)
        return parts[-1:] != ("cli",) and "analysis" not in parts

    def check(self, node: ast.Call, context: FileContext) -> Iterable[LintDiagnostic]:
        """Flag any call whose callee is the bare name ``print``."""
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            yield self.found(
                context, node, "bare print() in library code (use repro.obs logging)"
            )


class NoAdhocRngRule(Rule):
    """All randomness must derive from ``repro.rng`` seed trees."""

    code = "no-adhoc-rng"
    description = (
        "ad-hoc random source; derive generators from repro.rng.SeedTree / "
        "repro.rng.stream so results stay reproducible bit-for-bit"
    )
    node_types = (ast.Call,)

    _BANNED = {
        "numpy.random.default_rng",
        "numpy.random.seed",
        "numpy.random.RandomState",
    }

    def check(self, node: ast.Call, context: FileContext) -> Iterable[LintDiagnostic]:
        """Flag stdlib ``random`` and seed-tree-bypassing numpy calls."""
        resolved = context.resolve(node.func)
        if resolved is None:
            return
        if resolved in self._BANNED or resolved.startswith("random."):
            yield self.found(
                context,
                node,
                f"{resolved}() bypasses the seed tree; use repro.rng.stream() "
                "or a repro.rng.SeedTree child generator",
            )


class NoWallClockRule(Rule):
    """Simulation/DRAM/bender/obs code must not read the host clock directly."""

    code = "no-wall-clock"
    description = (
        "direct wall-clock read; simulated-time code has no host clock at "
        "all, and observability code must route through "
        "repro.obs.clock.monotonic_s (the single sanctioned read site)"
    )
    node_types = (ast.Call,)

    _SCOPES = ("repro.sim", "repro.dram", "repro.bender", "repro.obs")
    _BANNED = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def applies_to(self, context: FileContext) -> bool:
        """Only the packages whose time is simulated time."""
        return any(
            context.module == scope or context.module.startswith(scope + ".")
            for scope in self._SCOPES
        )

    def check(self, node: ast.Call, context: FileContext) -> Iterable[LintDiagnostic]:
        """Flag host-clock reads (time.*/datetime.* query functions)."""
        resolved = context.resolve(node.func)
        if resolved in self._BANNED:
            yield self.found(
                context,
                node,
                f"{resolved}() reads the host clock in simulated-time code",
            )


class PreferUnitsConstantRule(Rule):
    """Known time magnitudes must be spelled via ``repro.units``."""

    code = "prefer-units-constant"
    description = (
        "bare time-magnitude literal; spell it with the matching "
        "repro.units constant so timing assumptions stay in one place"
    )
    node_types = (ast.Constant,)

    #: literal value -> the units constant that should be used instead.
    _CONSTANTS = {
        units.TREFI: "TREFI",
        units.TAGGON_MAX: "TAGGON_MAX",
        units.TREFW: "TREFW",
        units.EXPERIMENT_BUDGET: "EXPERIMENT_BUDGET",
        units.S: "S",
    }

    def applies_to(self, context: FileContext) -> bool:
        """Everywhere but repro.units (the constants' definition site)."""
        return context.module != "repro.units"

    def check(
        self, node: ast.Constant, context: FileContext
    ) -> Iterable[LintDiagnostic]:
        """Flag numeric literals equal to a known units constant."""
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        name = self._CONSTANTS.get(float(value))
        if name is not None:
            yield self.found(
                context, node, f"bare literal {value!r}; use repro.units.{name}"
            )


class UnitSuffixMismatchRule(Rule):
    """``_ns``/``_us``/``_ms``/``_s`` names must hold matching magnitudes."""

    code = "unit-suffix-mismatch"
    description = (
        "a unit-suffixed name is assigned a value whose expression is in a "
        "different unit (e.g. `t_ms = 5 * units.MS` stores nanoseconds)"
    )
    node_types = (ast.Assign, ast.AnnAssign, ast.Call)

    #: suffix check order matters: _ns and _us and _ms all end with "s".
    _SUFFIXES = (("_ns", "ns"), ("_us", "us"), ("_ms", "ms"), ("_s", "s"))

    #: units members whose value is expressed in nanoseconds.
    _NS_VALUED = {
        f"repro.units.{name}"
        for name in (
            "NS",
            "US",
            "MS",
            "S",
            "TREFI",
            "TREFW",
            "TAGGON_MAX",
            "TRAS_MIN",
            "EXPERIMENT_BUDGET",
        )
    }
    _CONVERTERS = {
        "repro.units.ns_to_ms": "ms",
        "repro.units.ns_to_us": "us",
    }

    def _suffix_unit(self, name: str | None) -> str | None:
        if not name:
            return None
        for suffix, unit in self._SUFFIXES:
            if name.endswith(suffix):
                return unit
        return None

    def _value_unit(self, value: ast.AST, context: FileContext) -> str | None:
        """Best-effort unit of an expression; None when undecidable."""
        converter_units: set[str] = set()
        references_ns = False
        for node in ast.walk(value):
            if isinstance(node, ast.Call):
                resolved = context.resolve(node.func)
                if resolved in self._CONVERTERS:
                    converter_units.add(self._CONVERTERS[resolved])
            elif isinstance(node, (ast.Name, ast.Attribute)):
                if context.resolve(node) in self._NS_VALUED:
                    references_ns = True
        if len(converter_units) == 1:
            return next(iter(converter_units))
        if converter_units:
            return None
        return "ns" if references_ns else None

    def _compare(
        self,
        name: str | None,
        value: ast.AST,
        anchor: ast.AST,
        context: FileContext,
    ) -> Iterable[LintDiagnostic]:
        expected = self._suffix_unit(name)
        if expected is None:
            return
        actual = self._value_unit(value, context)
        if actual is not None and actual != expected:
            yield self.found(
                context,
                anchor,
                f"`{name}` says {expected} but the value expression is in "
                f"{actual} (convert with repro.units or rename)",
            )

    def check(self, node: ast.AST, context: FileContext) -> Iterable[LintDiagnostic]:
        """Compare suffixed assignment targets / keywords to value units."""
        if isinstance(node, ast.Assign):
            for target in node.targets:
                name = target.id if isinstance(target, ast.Name) else None
                if isinstance(target, ast.Attribute):
                    name = target.attr
                yield from self._compare(name, node.value, node, context)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target = node.target
            name = target.id if isinstance(target, ast.Name) else None
            if isinstance(target, ast.Attribute):
                name = target.attr
            yield from self._compare(name, node.value, node, context)
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg:
                    yield from self._compare(
                        keyword.arg, keyword.value, keyword.value, context
                    )


class NoMutableDefaultRule(Rule):
    """Mutable default arguments alias state across calls."""

    code = "no-mutable-default"
    description = (
        "mutable default argument (list/dict/set literal or constructor); "
        "default to None and build inside the function"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}

    def _is_mutable(self, default: ast.AST, context: FileContext) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(default, ast.Call):
            return context.resolve(default.func) in self._MUTABLE_CALLS
        return False

    def check(self, node: ast.AST, context: FileContext) -> Iterable[LintDiagnostic]:
        """Flag list/dict/set (literal or constructor) default values."""
        arguments = node.args
        defaults = list(arguments.defaults) + [
            default for default in arguments.kw_defaults if default is not None
        ]
        for default in defaults:
            if self._is_mutable(default, context):
                name = getattr(node, "name", "<lambda>")
                yield self.found(
                    context,
                    default,
                    f"mutable default argument in `{name}()`",
                )


class UnknownFaultPointRule(Rule):
    """Fault-point names must come from ``repro.testkit.points``.

    A typo'd point string would make :func:`fault_point` silently never
    fire (production) or :class:`FaultSpec` only fail at runtime (test),
    so string literals passed to the fault-injection API are checked
    against the declared ``FAULT_POINTS`` registry statically.
    """

    code = "unknown-fault-point"
    description = (
        "string literal passed to the fault-injection API is not a "
        "declared repro.testkit.points constant; fix the typo or declare "
        "the new point in FAULT_POINTS"
    )
    node_types = (ast.Call,)

    #: callables whose first argument (or ``point=``) names a fault point.
    _TARGETS = {
        "repro.testkit.faults.fault_point",
        "repro.testkit.faults.fault_write",
        "repro.testkit.faults.FaultSpec",
        "repro.testkit.FaultSpec",
    }

    def _point_argument(self, node: ast.Call) -> ast.AST | None:
        for keyword in node.keywords:
            if keyword.arg == "point":
                return keyword.value
        if node.args:
            return node.args[0]
        return None

    def check(self, node: ast.Call, context: FileContext) -> Iterable[LintDiagnostic]:
        """Flag constant point strings missing from ``FAULT_POINTS``."""
        if context.resolve(node.func) not in self._TARGETS:
            return
        argument = self._point_argument(node)
        if not isinstance(argument, ast.Constant):
            return  # named constants are validated at their definition
        value = argument.value
        if isinstance(value, str) and value not in FAULT_POINTS:
            yield self.found(
                context,
                argument,
                f"unknown fault point {value!r}; declared points: "
                f"{', '.join(sorted(FAULT_POINTS))}",
            )


class UnknownMetricNameRule(Rule):
    """Metric names must come from ``repro.obs.names.METRIC_NAMES``.

    A typo'd metric name would silently create a dead series that no
    dashboard, Prometheus scrape, or trajectory benchmark ever reads, so
    string literals passed to the metrics API are checked against the
    central registry statically — the same pattern as
    ``unknown-fault-point``.
    """

    code = "unknown-metric-name"
    description = (
        "string literal passed to the metrics API is not declared in "
        "repro.obs.names.METRIC_NAMES; fix the typo or declare the new "
        "series there first"
    )
    node_types = (ast.Call,)

    #: metric-factory method names on a registry-like receiver.
    _METHODS = {"counter", "gauge", "histogram", "timer"}

    def applies_to(self, context: FileContext) -> bool:
        """Everywhere except the instruments' own definition module."""
        return context.module != "repro.obs.metrics"

    def _is_registry_receiver(self, node: ast.Call, context: FileContext) -> bool:
        receiver = context.dotted_name(node.func.value)
        if receiver is None:
            return False
        tail = receiver.rsplit(".", 1)[-1]
        return tail in ("metrics", "registry")

    def check(self, node: ast.Call, context: FileContext) -> Iterable[LintDiagnostic]:
        """Flag constant metric names missing from ``METRIC_NAMES``."""
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._METHODS:
            return
        if not self._is_registry_receiver(node, context):
            return
        argument: ast.AST | None = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "name":
                argument = keyword.value
        if not isinstance(argument, ast.Constant):
            return  # named constants are validated at their definition
        value = argument.value
        if isinstance(value, str) and value not in METRIC_NAMES:
            yield self.found(
                context,
                argument,
                f"unknown metric name {value!r}; declare it in "
                "repro.obs.names.METRIC_NAMES",
            )


class NoLegacyExecutorApiRule(Rule):
    """Library code must use the compile/execute API, not the legacy runners.

    ``ProgramExecutor.run(program)`` and ``TestingInfrastructure.run``
    re-interpret the command program on every call; the redesigned API
    compiles once (:func:`repro.bender.compile_program`) and executes the
    payload many times.  The deprecated spellings only survive as shims,
    so in-repo callers are flagged statically instead of waiting for the
    :class:`DeprecationWarning` at runtime.
    """

    code = "no-legacy-executor-api"
    description = (
        "call to the deprecated ProgramExecutor.run / "
        "TestingInfrastructure.run shim; compile the program with "
        "repro.bender.compile_program(...) and run the payload via "
        "execute(...)"
    )
    node_types = (ast.Call,)

    #: constructors whose instances expose the deprecated ``.run``.
    _CONSTRUCTORS = {
        "repro.bender.ProgramExecutor",
        "repro.bender.executor.ProgramExecutor",
        "repro.bender.TestingInfrastructure",
        "repro.bender.infrastructure.TestingInfrastructure",
    }

    #: receiver names conventionally bound to executor/infrastructure
    #: instances in this codebase.
    _RECEIVER_NAMES = {"executor", "infra", "infrastructure", "bench"}

    #: the shim definition sites themselves stay exempt.
    _SHIM_MODULES = {"repro.bender.executor", "repro.bender.infrastructure"}

    def __init__(self) -> None:
        self._legacy_names: set[str] = set()

    def applies_to(self, context: FileContext) -> bool:
        """Everywhere in the package except the shims' own modules."""
        return context.module not in self._SHIM_MODULES

    def check_module(self, context: FileContext) -> Iterable[LintDiagnostic]:
        """Collect in-file variables assigned from the legacy constructors."""
        self._legacy_names = set()
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if context.resolve(node.value.func) not in self._CONSTRUCTORS:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._legacy_names.add(target.id)
        return ()

    def _receiver_is_legacy(self, receiver: ast.AST, context: FileContext) -> bool:
        if isinstance(receiver, ast.Call):
            return context.resolve(receiver.func) in self._CONSTRUCTORS
        dotted = context.dotted_name(receiver)
        if dotted is None:
            return False
        tail = dotted.rsplit(".", 1)[-1]
        return tail in self._RECEIVER_NAMES or dotted in self._legacy_names

    def check(self, node: ast.Call, context: FileContext) -> Iterable[LintDiagnostic]:
        """Flag ``.run(...)`` on executor/infrastructure receivers."""
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "run":
            return
        if self._receiver_is_legacy(func.value, context):
            yield self.found(
                context,
                node,
                "deprecated .run(...) call; compile the program with "
                "repro.bender.compile_program(...) and execute the payload",
            )


class RequireFutureAnnotationsRule(Rule):
    """Modules that define anything need postponed annotation evaluation."""

    code = "require-future-annotations"
    description = (
        "module defines functions/classes but lacks `from __future__ import "
        "annotations` (the codebase-wide annotation convention)"
    )

    def check_module(self, context: FileContext) -> Iterable[LintDiagnostic]:
        """Require the future import in any module that defines something."""
        has_definitions = any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            for node in ast.walk(context.tree)
        )
        if not has_definitions:
            return
        for node in context.tree.body:
            if isinstance(node, ast.ImportFrom) and node.module == "__future__":
                if any(alias.name == "annotations" for alias in node.names):
                    return
        yield LintDiagnostic(
            rule=self.code,
            message="missing `from __future__ import annotations`",
            path=context.path,
            line=1,
        )


def default_rules() -> Sequence[Rule]:
    """Fresh instances of every shipped rule, in catalog order."""
    return (
        NoBarePrintRule(),
        NoAdhocRngRule(),
        NoWallClockRule(),
        PreferUnitsConstantRule(),
        UnitSuffixMismatchRule(),
        NoMutableDefaultRule(),
        UnknownFaultPointRule(),
        UnknownMetricNameRule(),
        NoLegacyExecutorApiRule(),
        RequireFutureAnnotationsRule(),
    )


def rules_by_code() -> dict[str, Rule]:
    """Map rule code -> instance (for CLI rule selection)."""
    return {rule.code: rule for rule in default_rules()}
