"""Dependency-free metrics: counters, gauges, histograms, timers.

A :class:`MetricsRegistry` hands out named instruments keyed by
``(name, labels)``; the same call always returns the same instrument, so
hot paths can bind one once and increment it cheaply.  The
:class:`NullRegistry` returns shared no-op instruments, which is what
makes it safe to leave instrumentation calls in hot paths permanently:
the uninstrumented configuration pays only an attribute lookup and an
empty method call per event, and nothing at all where call sites flush
plain-integer bookkeeping once per run.

Percentiles use the nearest-rank method over the raw recorded samples —
experiment counts here are thousands, not billions, so no sketching is
needed.  Bucket counts for the Prometheus exposition
(:meth:`MetricsRegistry.to_prometheus`) are likewise computed on demand
from the raw samples, keeping ``record()`` a two-operation hot path.
"""

from __future__ import annotations

import bisect
import json
import math
import os
from pathlib import Path
from typing import Iterator

from repro.obs.clock import monotonic_s

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "atomic_write_text",
]

#: Fixed histogram buckets (seconds) for the Prometheus exposition —
#: upper bounds chosen to cover microsecond shard units through
#: multi-second campaign jobs.  ``+Inf`` is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    An interrupted writer can never leave a truncated file at ``path``:
    the content lands in a sibling temp file first and is moved into
    place with :func:`os.replace`, which is atomic on POSIX.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _prometheus_name(name: str) -> str:
    """A dotted repro metric name as a valid Prometheus metric name."""
    return name.replace(".", "_").replace("-", "_")


def _prometheus_escape(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prometheus_labels(labels: dict[str, str]) -> str:
    """``{key="value",...}`` or the empty string for unlabeled series."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_prometheus_escape(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _prometheus_value(value: float) -> str:
    """A float formatted the way Prometheus expects (no trailing zeros)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:g}"


class Counter:
    """Monotonically increasing count of events."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A value that goes up and down (temperature, queue depth, rate)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Distribution of observed values with percentile summaries."""

    __slots__ = ("name", "labels", "_values", "_total")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self._values: list[float] = []
        self._total = 0.0

    def record(self, value: float) -> None:
        """Add one observation."""
        self._values.append(value)
        self._total += value

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._total

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self._total / len(self._values) if self._values else 0.0

    @property
    def minimum(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return min(self._values) if self._values else 0.0

    @property
    def maximum(self) -> float:
        """Largest observation (0.0 when empty)."""
        return max(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile ``p`` in [0, 100] (0.0 when empty)."""
        if not self._values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        ordered = sorted(self._values)
        rank = max(math.ceil(p / 100.0 * len(ordered)), 1)
        return ordered[rank - 1]

    def summary(self) -> dict[str, float]:
        """Count/sum/min/max/mean plus p50/p90/p99."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }

    def bucket_counts(
        self, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with +Inf.

        Computed on demand from the raw samples so ``record()`` stays a
        two-operation hot path; counts are monotonically non-decreasing
        as Prometheus requires.
        """
        ordered = sorted(self._values)
        pairs = [
            (bound, bisect.bisect_right(ordered, bound)) for bound in buckets
        ]
        pairs.append((math.inf, len(ordered)))
        return pairs


class Timer:
    """Context manager recording elapsed wall seconds into a histogram."""

    __slots__ = ("histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = monotonic_s()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.histogram.record(monotonic_s() - self._start)
        return False


class MetricsRegistry:
    """Factory and store for named instruments.

    Instruments are memoized by ``(name, labels)``: asking twice for
    ``counter("executor.commands", opcode="act")`` returns the same
    :class:`Counter`, so values accumulate across call sites.
    """

    #: Whether this registry actually records (the null registry doesn't).
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[tuple[str, _LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter named ``name`` with ``labels`` (created at 0)."""
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = Counter(name, {k: str(v) for k, v in labels.items()})
            self._counters[key] = instrument
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge named ``name`` with ``labels``."""
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = Gauge(name, {k: str(v) for k, v in labels.items()})
            self._gauges[key] = instrument
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram named ``name`` with ``labels``."""
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = Histogram(name, {k: str(v) for k, v in labels.items()})
            self._histograms[key] = instrument
        return instrument

    def timer(self, name: str, **labels: object) -> Timer:
        """A fresh :class:`Timer` feeding ``histogram(name, **labels)``."""
        return Timer(self.histogram(name, **labels))

    # ------------------------------------------------------------------

    def counters(self) -> Iterator[Counter]:
        """All counters, in creation order."""
        return iter(self._counters.values())

    def value(self, name: str, **labels: object) -> int | float | None:
        """Current value of a counter or gauge; ``None`` if never created."""
        key = (name, _label_key(labels))
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return None

    def to_dict(self, raw: bool = False) -> dict:
        """JSON-ready snapshot of every instrument.

        ``raw`` additionally exports each histogram's individual
        observations (``"values"``), which lets another registry merge
        the snapshot losslessly via :meth:`merge_snapshot`.
        """
        return {
            "counters": [
                {"name": c.name, "labels": c.labels, "value": c.value}
                for c in self._counters.values()
            ],
            "gauges": [
                {"name": g.name, "labels": g.labels, "value": g.value}
                for g in self._gauges.values()
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": h.labels,
                    **h.summary(),
                    **({"values": list(h._values)} if raw else {}),
                }
                for h in self._histograms.values()
            ],
        }

    def drain(self) -> dict:
        """Snapshot (with raw histogram values) and reset every instrument.

        Used by campaign-engine workers to ship per-shard metric deltas
        over the result queue: repeated drains never double-count.
        Gauges keep their last value (set semantics).
        """
        snapshot = self.to_dict(raw=True)
        for counter in self._counters.values():
            counter.value = 0
        for histogram in self._histograms.values():
            histogram._values.clear()
            histogram._total = 0.0
        return snapshot

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters add, gauges take the incoming value, and histograms
        replay raw ``"values"`` when the snapshot carries them (snapshots
        exported without ``raw`` merge their counters/gauges only).
        """
        for entry in snapshot.get("counters", ()):
            if entry["value"]:
                self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **entry["labels"]).set(entry["value"])
        for entry in snapshot.get("histograms", ()):
            histogram = self.histogram(entry["name"], **entry["labels"])
            for value in entry.get("values", ()):
                histogram.record(value)

    def write_json(self, path: str | Path) -> None:
        """Dump the snapshot to ``path`` atomically.

        Raw histogram values are included so snapshot files from many
        processes (``--metrics-out`` from workers and parent) can be
        merged losslessly by ``repro obs-report``.
        """
        atomic_write_text(path, json.dumps(self.to_dict(raw=True), indent=1))

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every instrument.

        Dotted metric names become underscored (``service.requests`` →
        ``service_requests_total``); counters get the ``_total`` suffix,
        histograms expand to cumulative ``_bucket{le=...}`` series plus
        ``_sum``/``_count``, and every family is preceded by a ``# TYPE``
        line so standard scrapers parse the output directly.
        """
        lines: list[str] = []
        families: set[str] = set()

        def emit_type(family: str, kind: str) -> None:
            if family not in families:
                families.add(family)
                lines.append(f"# TYPE {family} {kind}")

        for counter in self._counters.values():
            family = _prometheus_name(counter.name) + "_total"
            emit_type(family, "counter")
            lines.append(
                f"{family}{_prometheus_labels(counter.labels)} {counter.value}"
            )
        for gauge in self._gauges.values():
            family = _prometheus_name(gauge.name)
            emit_type(family, "gauge")
            lines.append(
                f"{family}{_prometheus_labels(gauge.labels)} "
                f"{_prometheus_value(gauge.value)}"
            )
        for histogram in self._histograms.values():
            family = _prometheus_name(histogram.name)
            emit_type(family, "histogram")
            for bound, count in histogram.bucket_counts():
                bucket_labels = dict(histogram.labels)
                bucket_labels["le"] = "+Inf" if math.isinf(bound) else f"{bound:g}"
                lines.append(
                    f"{family}_bucket{_prometheus_labels(bucket_labels)} {count}"
                )
            labels = _prometheus_labels(histogram.labels)
            lines.append(f"{family}_sum{labels} {_prometheus_value(histogram.total)}")
            lines.append(f"{family}_count{labels} {histogram.count}")
        return "\n".join(lines) + "\n" if lines else ""


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def record(self, value: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def __enter__(self) -> "Timer":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


class NullRegistry(MetricsRegistry):
    """No-op registry: every request returns a shared inert instrument.

    Instrument methods are empty, so instrumentation left enabled in hot
    paths costs one method dispatch per event and records nothing.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null", {})
        self._null_gauge = _NullGauge("null", {})
        self._null_histogram = _NullHistogram("null", {})
        self._null_timer = _NullTimer(self._null_histogram)

    def counter(self, name: str, **labels: object) -> Counter:
        """The shared inert counter."""
        return self._null_counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The shared inert gauge."""
        return self._null_gauge

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The shared inert histogram."""
        return self._null_histogram

    def timer(self, name: str, **labels: object) -> Timer:
        """The shared inert timer."""
        return self._null_timer

    def to_dict(self, raw: bool = False) -> dict:
        """Always the empty snapshot."""
        return {"counters": [], "gauges": [], "histograms": []}


#: Shared no-op registry (safe: all its instruments are inert).
NULL_REGISTRY = NullRegistry()
