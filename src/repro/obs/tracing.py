"""Hierarchical spans with cross-process context propagation.

A :class:`Tracer` maintains a stack of open :class:`Span` objects; each
``with tracer.span("acmin.search", t_aggon=...)`` block records wall
time, nesting (parent id and depth), and any attributes attached via
``span.set(...)`` while the block runs.

Every span carries a ``trace_id`` (shared by all spans of one logical
request) and a globally-unique string ``span_id``, so spans recorded in
*different processes* merge into one coherent trace without id
remapping.  A :class:`TraceContext` is the portable ``(trace_id,
span_id)`` pair: serialize it with :meth:`TraceContext.to_header`, ship
it over an HTTP header (``X-Repro-Trace``), a job record, or a worker
task payload, and build the remote tracer with
``Tracer(context=TraceContext.from_header(...))`` — its root spans then
parent under the originating span.

Finished spans export to two formats:

* **JSONL** — one span object per line, convenient for grep/pandas;
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev as complete (``"ph": "X"``) events, one track
  per nesting depth (depth is recomputed from the merged parent chain).

The :class:`NullTracer` satisfies the same interface with a single
reusable inert span, so tracing can stay in hot paths unconditionally.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.obs.clock import monotonic_s
from repro.obs.metrics import atomic_write_text

__all__ = ["Span", "TraceContext", "Tracer", "NullTracer", "NULL_SPAN"]

#: HTTP header carrying a serialized :class:`TraceContext`.
TRACE_HEADER = "X-Repro-Trace"


@dataclass(frozen=True)
class TraceContext:
    """The portable identity of one span: ``(trace_id, span_id)``.

    This is what crosses process boundaries.  The receiving side builds
    ``Tracer(context=ctx)`` so its root spans record ``ctx.span_id`` as
    their parent and inherit ``ctx.trace_id``, stitching both processes
    into a single trace.
    """

    trace_id: str
    span_id: str

    def to_header(self) -> str:
        """Serialize as ``"<trace_id>-<span_id>"`` for header transport."""
        return f"{self.trace_id}-{self.span_id}"

    @classmethod
    def from_header(cls, value: str | None) -> "TraceContext | None":
        """Parse :meth:`to_header` output; ``None`` on missing/malformed."""
        if not value:
            return None
        trace_id, sep, span_id = value.strip().partition("-")
        if not sep or not trace_id or not span_id:
            return None
        return cls(trace_id=trace_id, span_id=span_id)


class Span:
    """One timed, attributed region of work.

    Usable as a context manager (the owning tracer hands it out already
    started); ``set(**attrs)`` attaches result attributes mid-flight.
    """

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "depth",
        "start_s",
        "duration_s",
        "_tracer",
        "_detached",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict[str, object],
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        depth: int,
        detached: bool = False,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start_s = 0.0
        self.duration_s = 0.0
        self._detached = detached

    def set(self, **attrs: object) -> "Span":
        """Attach attributes (e.g. results, counts) to the span."""
        self.attrs.update(attrs)
        return self

    def context(self) -> TraceContext:
        """This span's identity, ready to propagate to another process."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._finish(self)
        return False

    def to_dict(self) -> dict:
        """JSON-ready representation (times in seconds)."""
        return {
            "name": self.name,
            "trace": self.trace_id,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects hierarchical spans for one run.

    ``context`` is the propagated parent from another process: root
    spans (nothing on the local stack) parent under ``context.span_id``
    and inherit its trace id instead of starting a fresh trace.
    """

    enabled = True

    def __init__(self, context: TraceContext | None = None) -> None:
        self.finished: list[Span] = []
        self.context = context
        self.trace_id = context.trace_id if context else os.urandom(8).hex()
        self._stack: list[Span] = []
        # Random per-tracer prefix keeps span ids globally unique, so
        # spans merged from many processes never collide.
        self._prefix = os.urandom(4).hex()
        self._next = 1
        self._epoch = monotonic_s()

    def _new_id(self) -> str:
        span_id = f"{self._prefix}{self._next:06x}"
        self._next += 1
        return span_id

    def span(self, name: str, **attrs: object) -> Span:
        """Open a span nested under the innermost open span."""
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent_id, trace_id = parent.span_id, parent.trace_id
        elif self.context is not None:
            parent_id, trace_id = self.context.span_id, self.trace_id
        else:
            parent_id, trace_id = None, self.trace_id
        span = Span(
            tracer=self,
            name=name,
            attrs=dict(attrs),
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            depth=len(self._stack),
        )
        span.start_s = monotonic_s() - self._epoch
        self._stack.append(span)
        return span

    def start_span(
        self,
        name: str,
        parent: "Span | TraceContext | None" = None,
        **attrs: object,
    ) -> Span:
        """Open a *detached* span that bypasses the nesting stack.

        Concurrent work (asyncio request handlers, overlapping jobs)
        can't share the thread-local stack without corrupting nesting;
        detached spans take an explicit ``parent`` — a local
        :class:`Span`, a propagated :class:`TraceContext`, or ``None``
        for a new root — and never touch the stack.  Close them with the
        usual ``with`` block (or ``span.__exit__()``).
        """
        if isinstance(parent, Span):
            parent_id, trace_id = parent.span_id, parent.trace_id
            depth = parent.depth + 1
        elif isinstance(parent, TraceContext):
            parent_id, trace_id = parent.span_id, parent.trace_id
            depth = 0
        elif self.context is not None:
            parent_id, trace_id = self.context.span_id, self.trace_id
            depth = 0
        else:
            parent_id, trace_id = None, self.trace_id
            depth = 0
        span = Span(
            tracer=self,
            name=name,
            attrs=dict(attrs),
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            depth=depth,
            detached=True,
        )
        span.start_s = monotonic_s() - self._epoch
        return span

    def current_context(self) -> TraceContext | None:
        """Context of the innermost open span (or the propagated one)."""
        if self._stack:
            return self._stack[-1].context()
        return self.context

    def _finish(self, span: Span) -> None:
        span.duration_s = (monotonic_s() - self._epoch) - span.start_s
        if not span._detached:
            # Close any abandoned children first (exceptions unwinding).
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        self.finished.append(span)

    def now_s(self) -> float:
        """Seconds since this tracer's epoch (parent-relative timestamps)."""
        return monotonic_s() - self._epoch

    # ------------------------------------------------------------------
    # cross-process merging
    # ------------------------------------------------------------------

    def drain(self) -> list[dict]:
        """Export finished spans as dicts and clear them.

        Campaign-engine workers drain after every shard so span payloads
        ship incrementally over the result queue without re-sending.
        """
        spans = [span.to_dict() for span in self.finished]
        self.finished.clear()
        return spans

    def ingest(
        self,
        span_dicts: list[dict],
        parent: Span | None = None,
        shift_s: float = 0.0,
    ) -> None:
        """Absorb spans exported by another tracer (e.g. a worker process).

        Span ids are globally unique, so they are kept verbatim; spans
        that arrive *without* a parent (pre-propagation producers) are
        re-parented under ``parent``, and start times are shifted by
        ``shift_s`` — the parent-relative time the remote epoch
        corresponds to — so the merged Chrome trace shares one timeline.
        """
        base_depth = parent.depth + 1 if parent is not None else 0
        root_parent = parent.span_id if parent is not None else None
        root_trace = parent.trace_id if parent is not None else self.trace_id
        for payload in span_dicts:
            span = Span(
                tracer=self,
                name=payload["name"],
                attrs=dict(payload.get("attrs", {})),
                trace_id=payload.get("trace") or root_trace,
                span_id=payload["id"],
                parent_id=(
                    payload["parent"]
                    if payload.get("parent") is not None
                    else root_parent
                ),
                depth=payload.get("depth", 0) + base_depth,
            )
            span.start_s = payload.get("start_s", 0.0) + shift_s
            span.duration_s = payload.get("duration_s", 0.0)
            self.finished.append(span)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per finished span, in completion order."""
        return "\n".join(json.dumps(span.to_dict()) for span in self.finished)

    def write_jsonl(self, path: str | Path) -> None:
        """Write the JSONL export atomically."""
        text = self.to_jsonl()
        atomic_write_text(path, text + "\n" if text else "")

    def _resolved_depths(self) -> dict[str, int]:
        """Depth of every finished span, following merged parent chains.

        Spans ingested from other processes carry depths relative to
        their own tracer; walking the parent chain (falling back to the
        recorded depth at roots, with a cycle guard for malformed input)
        yields consistent track numbers for the merged Chrome trace.
        """
        by_id = {span.span_id: span for span in self.finished}
        depths: dict[str, int] = {}
        for span in self.finished:
            chain: list[Span] = []
            seen: set[str] = set()
            current = span
            while current.span_id not in depths:
                if current.span_id in seen:  # cycle: trust recorded depth
                    depths[current.span_id] = current.depth
                    break
                seen.add(current.span_id)
                chain.append(current)
                parent = (
                    by_id.get(current.parent_id)
                    if current.parent_id is not None
                    else None
                )
                if parent is None:  # local root, or remote/unknown parent
                    depths[current.span_id] = current.depth
                    break
                current = parent
            for entry in reversed(chain):
                if entry.span_id not in depths:
                    depths[entry.span_id] = depths[entry.parent_id] + 1
        return depths

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event format: complete events, ts/dur in us.

        Each event also carries top-level ``id``/``parent``/``trace``
        keys (ignored by the Chrome viewer, preserved for tooling that
        reconstructs ancestry from the export).
        """
        depths = self._resolved_depths()
        events = []
        for span in sorted(self.finished, key=lambda s: s.start_s):
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start_s * 1e6,
                    "dur": span.duration_s * 1e6,
                    "pid": 1,
                    "tid": depths[span.span_id] + 1,
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "trace": span.trace_id,
                    "args": {str(k): v for k, v in span.attrs.items()},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> None:
        """Write the Chrome trace export atomically."""
        atomic_write_text(path, json.dumps(self.to_chrome_trace(), indent=1))


class _NullSpan:
    """Inert span: context manager and ``set()`` both do nothing."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def context(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: Shared inert span handed out by :class:`NullTracer`.
NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: ``span()`` returns the shared inert span."""

    enabled = False
    finished: list = []
    context = None
    trace_id = ""

    def span(self, name: str, **attrs: object) -> _NullSpan:
        """The shared inert span."""
        return NULL_SPAN

    def start_span(
        self,
        name: str,
        parent: object | None = None,
        **attrs: object,
    ) -> _NullSpan:
        """The shared inert span (detached API)."""
        return NULL_SPAN

    def current_context(self) -> None:
        """Always ``None`` (nothing to propagate)."""
        return None

    def now_s(self) -> float:
        """Always 0.0 (there is no timeline)."""
        return 0.0

    def drain(self) -> list[dict]:
        """Always empty."""
        return []

    def ingest(
        self,
        span_dicts: list[dict],
        parent: object | None = None,
        shift_s: float = 0.0,
    ) -> None:
        """No-op (ingested spans are dropped)."""

    def to_jsonl(self) -> str:
        """Always empty."""
        return ""

    def write_jsonl(self, path: str | Path) -> None:
        """No-op (writes nothing)."""

    def to_chrome_trace(self) -> dict:
        """An empty trace document."""
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> None:
        """No-op (writes nothing)."""
