"""Hierarchical spans with JSONL and Chrome trace-event export.

A :class:`Tracer` maintains a stack of open :class:`Span` objects; each
``with tracer.span("acmin.search", t_aggon=...)`` block records wall
time, nesting (parent id and depth), and any attributes attached via
``span.set(...)`` while the block runs.  Finished spans export to two
formats:

* **JSONL** — one span object per line, convenient for grep/pandas;
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev as complete (``"ph": "X"``) events, one track
  per nesting depth.

The :class:`NullTracer` satisfies the same interface with a single
reusable inert span, so tracing can stay in hot paths unconditionally.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.metrics import atomic_write_text

__all__ = ["Span", "Tracer", "NullTracer", "NULL_SPAN"]


class Span:
    """One timed, attributed region of work.

    Usable as a context manager (the owning tracer hands it out already
    started); ``set(**attrs)`` attaches result attributes mid-flight.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "start_s",
        "duration_s",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict[str, object],
        span_id: int,
        parent_id: int | None,
        depth: int,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start_s = 0.0
        self.duration_s = 0.0

    def set(self, **attrs: object) -> "Span":
        """Attach attributes (e.g. results, counts) to the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._finish(self)
        return False

    def to_dict(self) -> dict:
        """JSON-ready representation (times in seconds)."""
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects hierarchical spans for one run."""

    enabled = True

    def __init__(self) -> None:
        self.finished: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self._epoch = time.perf_counter()

    def span(self, name: str, **attrs: object) -> Span:
        """Open a span nested under the innermost open span."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            tracer=self,
            name=name,
            attrs=dict(attrs),
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
        )
        self._next_id += 1
        span.start_s = time.perf_counter() - self._epoch
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.duration_s = (time.perf_counter() - self._epoch) - span.start_s
        # Close any abandoned children first (exceptions unwinding).
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self.finished.append(span)

    def now_s(self) -> float:
        """Seconds since this tracer's epoch (parent-relative timestamps)."""
        return time.perf_counter() - self._epoch

    # ------------------------------------------------------------------
    # cross-process merging
    # ------------------------------------------------------------------

    def drain(self) -> list[dict]:
        """Export finished spans as dicts and clear them.

        Campaign-engine workers drain after every shard so span payloads
        ship incrementally over the result queue without re-sending.
        """
        spans = [span.to_dict() for span in self.finished]
        self.finished.clear()
        return spans

    def ingest(
        self,
        span_dicts: list[dict],
        parent: Span | None = None,
        shift_s: float = 0.0,
    ) -> None:
        """Absorb spans exported by another tracer (e.g. a worker process).

        Span ids are remapped past this tracer's counter, spans without a
        parent are re-parented under ``parent`` (nesting the worker's
        trace below e.g. the campaign span), and start times are shifted
        by ``shift_s`` — the parent-relative time the worker's epoch
        corresponds to — so the merged Chrome trace shares one timeline.
        """
        if not span_dicts:
            return
        offset = self._next_id
        base_depth = parent.depth + 1 if parent is not None else 0
        root_parent = parent.span_id if parent is not None else None
        highest = offset
        for payload in span_dicts:
            span = Span(
                tracer=self,
                name=payload["name"],
                attrs=dict(payload.get("attrs", {})),
                span_id=payload["id"] + offset,
                parent_id=(
                    payload["parent"] + offset
                    if payload.get("parent") is not None
                    else root_parent
                ),
                depth=payload.get("depth", 0) + base_depth,
            )
            span.start_s = payload.get("start_s", 0.0) + shift_s
            span.duration_s = payload.get("duration_s", 0.0)
            self.finished.append(span)
            highest = max(highest, span.span_id)
        self._next_id = highest + 1

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per finished span, in completion order."""
        return "\n".join(json.dumps(span.to_dict()) for span in self.finished)

    def write_jsonl(self, path: str | Path) -> None:
        """Write the JSONL export atomically."""
        text = self.to_jsonl()
        atomic_write_text(path, text + "\n" if text else "")

    def to_chrome_trace(self) -> dict:
        """Chrome trace-event format: complete events, ts/dur in us."""
        events = []
        for span in sorted(self.finished, key=lambda s: s.start_s):
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start_s * 1e6,
                    "dur": span.duration_s * 1e6,
                    "pid": 1,
                    "tid": span.depth + 1,
                    "args": {str(k): v for k, v in span.attrs.items()},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> None:
        """Write the Chrome trace export atomically."""
        atomic_write_text(path, json.dumps(self.to_chrome_trace(), indent=1))


class _NullSpan:
    """Inert span: context manager and ``set()`` both do nothing."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


#: Shared inert span handed out by :class:`NullTracer`.
NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: ``span()`` returns the shared inert span."""

    enabled = False
    finished: list = []

    def span(self, name: str, **attrs: object) -> _NullSpan:
        """The shared inert span."""
        return NULL_SPAN

    def now_s(self) -> float:
        """Always 0.0 (there is no timeline)."""
        return 0.0

    def drain(self) -> list[dict]:
        """Always empty."""
        return []

    def ingest(
        self,
        span_dicts: list[dict],
        parent: object | None = None,
        shift_s: float = 0.0,
    ) -> None:
        """No-op (ingested spans are dropped)."""

    def to_jsonl(self) -> str:
        """Always empty."""
        return ""

    def write_jsonl(self, path: str | Path) -> None:
        """No-op (writes nothing)."""

    def to_chrome_trace(self) -> dict:
        """An empty trace document."""
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path) -> None:
        """No-op (writes nothing)."""
