"""The single monotonic-clock read point for all of repro's wall timing.

Every wall-clock read that feeds an observability instrument — `Timer`
histograms, tracer span timestamps, progress ETAs, the sampling
profiler — routes through :func:`monotonic_s`, so the codebase has
exactly one place where host time is read (and exactly one
``# reprolint: disable`` site for the ``no-wall-clock`` rule, instead
of scattered per-call-site suppressions).

Simulated-time code (``repro.sim``/``repro.dram``/``repro.bender``)
must not read the host clock at all; the executor and simulator measure
their *wall* throughput via this helper, which keeps the lint rule's
guarantee: any other host-clock read inside those packages is a bug.
"""

from __future__ import annotations

import time

__all__ = ["monotonic_s"]


def monotonic_s() -> float:
    """Monotonic wall seconds (arbitrary epoch, never goes backwards)."""
    return time.perf_counter()  # reprolint: disable=no-wall-clock
