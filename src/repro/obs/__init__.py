"""Observability: metrics, hierarchical spans, progress, and logging.

The package's instrumented layers (executor, simulator, characterization
campaigns, mitigations) all accept an :class:`Observer` — a bundle of a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.tracing.Tracer`, and a
:class:`~repro.obs.progress.ProgressReporter`.  By default every layer
uses :data:`NULL_OBSERVER`, whose parts are inert no-ops, so the
instrumentation can live in hot paths permanently at negligible cost.

Typical use::

    from repro.obs import Observer

    observer = Observer.create(label="fig06")
    records = run_campaign(spec, observer=observer)
    observer.metrics.write_json("metrics.json")
    observer.tracer.write_chrome_trace("trace.json")   # chrome://tracing

Metric names and the trace schema are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import logging
import sys
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.clock import monotonic_s
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Timer,
    atomic_write_text,
)
from repro.obs.names import METRIC_NAMES
from repro.obs.profiler import SamplingProfiler
from repro.obs.progress import NullProgress, ProgressEvent, ProgressReporter, log_sink
from repro.obs.tracing import TRACE_HEADER, NullTracer, Span, TraceContext, Tracer

__all__ = [
    "Observer",
    "NULL_OBSERVER",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "METRIC_NAMES",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Tracer",
    "NullTracer",
    "Span",
    "TraceContext",
    "TRACE_HEADER",
    "SamplingProfiler",
    "ProgressReporter",
    "ProgressEvent",
    "NullProgress",
    "log_sink",
    "atomic_write_text",
    "monotonic_s",
    "configure_logging",
    "get_logger",
    "declare_standard_metrics",
]


@dataclass
class Observer:
    """One run's observability context: metrics + tracer + progress."""

    metrics: MetricsRegistry = field(default_factory=lambda: NULL_REGISTRY)
    tracer: Tracer | NullTracer = field(default_factory=NullTracer)
    progress: ProgressReporter = field(default_factory=NullProgress)

    @classmethod
    def create(
        cls,
        label: str = "run",
        progress_sink: Callable[[ProgressEvent], None] | None = None,
        context: TraceContext | None = None,
    ) -> "Observer":
        """An active observer recording metrics, spans, and progress.

        ``context`` is a propagated :class:`TraceContext` from another
        process; the observer's tracer parents its root spans under it.
        """
        return cls(
            metrics=MetricsRegistry(),
            tracer=Tracer(context=context),
            progress=ProgressReporter(label=label, sink=progress_sink),
        )

    @classmethod
    def null(cls) -> "Observer":
        """The shared inert observer."""
        return NULL_OBSERVER

    @property
    def enabled(self) -> bool:
        """Whether this observer records anything."""
        return self.metrics.enabled or self.tracer.enabled

    def span(self, name: str, **attrs: object):
        """Open a span on the observer's tracer (see :class:`Tracer`)."""
        return self.tracer.span(name, **attrs)


#: Shared inert observer used wherever no observer was supplied.
NULL_OBSERVER = Observer()


# ----------------------------------------------------------------------
# logging
# ----------------------------------------------------------------------

_LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_configured_handler: logging.Handler | None = None


def get_logger(name: str) -> logging.Logger:
    """A logger in the ``repro.*`` namespace."""
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree from a ``-v`` count.

    ``0`` → WARNING, ``1`` → INFO, ``2+`` → DEBUG.  Idempotent: repeated
    calls adjust the level instead of stacking handlers.  Returns the
    root ``repro`` logger.
    """
    global _configured_handler
    level = (
        logging.WARNING
        if verbosity <= 0
        else logging.INFO
        if verbosity == 1
        else logging.DEBUG
    )
    root = logging.getLogger("repro")
    if (
        _configured_handler is None
        or _configured_handler not in root.handlers
        or (stream is not None and getattr(_configured_handler, "stream", None) is not stream)
    ):
        # Replace rather than re-stream: setStream() flushes the old
        # stream, which raises if the caller has since closed it.
        if _configured_handler is not None and _configured_handler in root.handlers:
            root.removeHandler(_configured_handler)
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_LOG_FORMAT))
        root.addHandler(handler)
        _configured_handler = handler
    root.setLevel(level)
    return root


# ----------------------------------------------------------------------
# standard metric families
# ----------------------------------------------------------------------

#: Well-known counters pre-declared at 0 so exported metrics files have
#: a stable shape even when a run never touches a subsystem.
STANDARD_COUNTERS: tuple[tuple[str, dict[str, str]], ...] = (
    ("executor.programs", {}),
    ("executor.commands", {"opcode": "act"}),
    ("executor.commands", {"opcode": "pre"}),
    ("executor.commands", {"opcode": "wait"}),
    ("executor.commands", {"opcode": "fill"}),
    ("executor.commands", {"opcode": "read"}),
    ("executor.loop_iterations", {}),
    ("executor.timing_violations", {}),
    ("memctrl.requests_served", {}),
    ("memctrl.row_hits", {}),
    ("memctrl.row_misses", {}),
    ("memctrl.row_conflicts", {}),
    ("memctrl.activations", {}),
    ("memctrl.refresh_commands", {}),
    ("memctrl.preventive_refreshes", {}),
    ("campaign.experiments", {}),
    ("campaign.bitflips", {}),
    ("engine.shards", {}),
    ("engine.shards_resumed", {}),
    ("engine.retries", {}),
    ("engine.shard_failures", {}),
    ("service.requests", {}),
    ("service.cache_hits", {}),
    ("service.jobs_submitted", {}),
    ("service.jobs_completed", {}),
    ("service.jobs_failed", {}),
    ("service.jobs_interrupted", {}),
    ("service.rate_limited", {}),
    ("service.backpressure", {}),
)


def declare_standard_metrics(registry: MetricsRegistry) -> None:
    """Pre-create the well-known counter families (at value 0)."""
    for name, labels in STANDARD_COUNTERS:
        registry.counter(name, **labels)
