"""Thread-based sampling profiler with collapsed-stack output.

A :class:`SamplingProfiler` runs a daemon thread that periodically
captures the target thread's Python stack via
:func:`sys._current_frames` and tallies it as a collapsed stack string
(``module.func;module.func;... count``) — the format flamegraph.pl,
speedscope, and https://www.speedscope.app/ consume directly.

Sampling, not instrumenting: the profiled code runs unmodified, and the
cost is one stack walk per interval (default 5 ms → ~200 samples/s),
which keeps overhead within the budget asserted by
``benchmarks/bench_obs_overhead.py``.  Counts from worker processes
merge via :meth:`SamplingProfiler.merge_counts`, so a multiprocess
campaign still produces one profile.

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

from repro.obs.clock import monotonic_s
from repro.obs.metrics import atomic_write_text

__all__ = ["SamplingProfiler", "frame_label"]


def frame_label(frame) -> str:
    """``module.function`` label for one stack frame."""
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{frame.f_code.co_name}"


class SamplingProfiler:
    """Samples one thread's stack into collapsed-stack counts.

    Usable as a context manager::

        with SamplingProfiler(interval_s=0.005) as profiler:
            run_campaign(spec)
        profiler.write_collapsed("profile.txt")

    ``target_thread_id`` defaults to the constructing thread, which is
    the common case of profiling the work the caller is about to do.
    """

    def __init__(
        self,
        interval_s: float = 0.005,
        target_thread_id: int | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = interval_s
        self.target_thread_id = (
            target_thread_id if target_thread_id is not None else threading.get_ident()
        )
        self.counts: dict[str, int] = {}
        self.sample_count = 0
        self.sampled_s = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Start the sampler thread (idempotent while running)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._started_at = monotonic_s()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and join the sampler thread."""
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.sampled_s += monotonic_s() - self._started_at
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> bool:
        self.stop()
        return False

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample_once()

    def _sample_once(self) -> None:
        frame = sys._current_frames().get(self.target_thread_id)
        if frame is None:
            return
        labels: list[str] = []
        while frame is not None:
            labels.append(frame_label(frame))
            frame = frame.f_back
        labels.reverse()  # root first, leaf last — collapsed-stack order
        stack = ";".join(labels)
        self.counts[stack] = self.counts.get(stack, 0) + 1
        self.sample_count += 1

    # ------------------------------------------------------------------
    # aggregation and export
    # ------------------------------------------------------------------

    def merge_counts(self, counts: dict[str, int]) -> None:
        """Fold another profiler's collapsed counts into this one.

        Used to combine samples shipped back from engine worker
        processes with the parent's own.
        """
        for stack, count in counts.items():
            self.counts[stack] = self.counts.get(stack, 0) + count
            self.sample_count += count

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``stack count`` line per stack."""
        return "\n".join(
            f"{stack} {count}" for stack, count in sorted(self.counts.items())
        )

    def write_collapsed(self, path: str | Path) -> None:
        """Write the collapsed-stack export atomically."""
        text = self.collapsed()
        atomic_write_text(path, text + "\n" if text else "")

    def top_frames(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` hottest leaf frames as ``(label, samples)`` pairs.

        Leaf attribution (the innermost frame of each sample) answers
        "where is time actually spent", which is what the perf
        trajectory records per benchmark.
        """
        leaves: dict[str, int] = {}
        for stack, count in self.counts.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:n]
