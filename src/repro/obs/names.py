"""Central registry of every metric name the codebase may emit.

Dashboards, the Prometheus exposition, and the perf-trajectory harness
all reference metrics by name; a typo at an instrumentation site would
silently create a dead series and leave the dashboard flat.  The
``unknown-metric-name`` lint rule (``repro.lint.rules``) therefore
requires every string literal passed to the metrics API
(``counter``/``gauge``/``histogram``/``timer``) to appear here — the
same pattern as the fault-point registry in ``repro.testkit.points``.

Add the name here first, then instrument; the linter keeps the two in
sync forever after.  This module must stay dependency-free (the linter
imports it while analyzing arbitrary files).
"""

from __future__ import annotations

__all__ = ["METRIC_NAMES"]

#: Every metric name that instrumentation may emit, grouped by subsystem.
METRIC_NAMES: frozenset[str] = frozenset(
    {
        # bender executor / testing infrastructure
        "executor.programs",
        "executor.payloads",
        "executor.commands",
        "executor.loop_iterations",
        "executor.timing_violations",
        "executor.ns_per_wall_s",
        "executor.wall_s",
        "bench.settle_events",
        "bench.temperature_c",
        # simulator and memory controller
        "sim.runs",
        "sim.events",
        "sim.ns_per_wall_s",
        "memctrl.requests_served",
        "memctrl.row_hits",
        "memctrl.row_misses",
        "memctrl.row_conflicts",
        "memctrl.activations",
        "memctrl.refresh_commands",
        "memctrl.preventive_refreshes",
        "memctrl.row_hit_rate",
        # mitigations
        "mitigation.refreshes",
        "mitigation.table_evictions",
        # characterization experiments
        "acmin.searches",
        "acmin.probes",
        "acmin.sites_with_flips",
        "taggonmin.searches",
        "taggonmin.probes",
        "taggonmin.sites_with_flips",
        "ber.measurements",
        "ber.bitflips",
        "campaign.experiments",
        "campaign.bitflips",
        # campaign engine
        "engine.shards",
        "engine.shards_resumed",
        "engine.shard_seconds",
        "engine.shard_failures",
        "engine.retries",
        # system-level attack demo
        "attack.runs",
        "attack.windows",
        "attack.windows_clean",
        "attack.bitflips",
        # service
        "service.requests",
        "service.requests_by_route",
        "service.request_seconds",
        "service.rate_limited",
        "service.cache_hits",
        "service.backpressure",
        "service.jobs_submitted",
        "service.jobs_completed",
        "service.jobs_failed",
        "service.jobs_interrupted",
        "service.job_seconds",
        "service.job_state_seconds",
        "service.jobs_by_state",
        "service.oldest_job_age_s",
        "service.queue_depth",
        "service.dashboard_snapshots",
        # fleet (shard leasing over the service API)
        "fleet.leases_granted",
        "fleet.leases_expired",
        "fleet.leases_reassigned",
        "fleet.leases_outstanding",
        "fleet.workers_active",
        "fleet.shards_pending",
        "fleet.heartbeats",
        "fleet.heartbeats_rejected",
        "fleet.completions",
        "fleet.completions_duplicate",
        "fleet.completions_rejected",
        "fleet.shard_failures",
        "fleet.shard_seconds",
        "fleet.lease_to_complete_seconds",
        # fleet worker process
        "worker.shards_executed",
        "worker.shards_discarded",
        "worker.lease_polls",
        # result warehouse (derived SQLite index over schema-v2 results)
        "warehouse.ingests",
        "warehouse.records_ingested",
        "warehouse.shards_ingested",
        "warehouse.shards_duplicate",
        "warehouse.ingest_seconds",
        "warehouse.rebuilds",
        "warehouse.queries",
        "warehouse.query_seconds",
        "warehouse.sources",
        "warehouse.records",
        "warehouse.torn_detected",
    }
)
