"""Campaign progress reporting through a pluggable sink.

A :class:`ProgressReporter` tracks experiments done/total, bitflips
found, elapsed wall time, and an ETA, and pushes a
:class:`ProgressEvent` to its sink on every advance.  The default sink
logs at INFO on the ``repro.obs.progress`` logger (visible with the CLI
``-v`` flag); campaigns running under a supervisor can substitute any
callable.  :class:`NullProgress` is the inert stand-in.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable

from repro.obs.clock import monotonic_s

__all__ = ["ProgressEvent", "ProgressReporter", "NullProgress", "log_sink"]

_logger = logging.getLogger("repro.obs.progress")


@dataclass(frozen=True)
class ProgressEvent:
    """One snapshot of campaign progress."""

    label: str
    done: int
    total: int | None
    flips: int
    elapsed_s: float
    eta_s: float | None

    def render(self) -> str:
        """Human-readable one-liner."""
        total = "?" if self.total is None else str(self.total)
        eta = "" if self.eta_s is None else f", eta {self.eta_s:.1f}s"
        return (
            f"{self.label}: {self.done}/{total} experiments, "
            f"{self.flips} bitflips, {self.elapsed_s:.1f}s elapsed{eta}"
        )


def log_sink(event: ProgressEvent) -> None:
    """Default sink: log the event at INFO."""
    _logger.info("%s", event.render())


class ProgressReporter:
    """Tracks done/total/flips and emits events to a sink."""

    def __init__(
        self,
        label: str = "campaign",
        total: int | None = None,
        sink: Callable[[ProgressEvent], None] | None = None,
    ) -> None:
        self.label = label
        self.total = total
        self.sink = sink if sink is not None else log_sink
        self.done = 0
        self.flips = 0
        self._start = monotonic_s()

    def start(self, total: int | None = None, label: str | None = None) -> None:
        """(Re)start the clock; optionally set the expected total."""
        if total is not None:
            self.total = total
        if label is not None:
            self.label = label
        self.done = 0
        self.flips = 0
        self._start = monotonic_s()

    @property
    def elapsed_s(self) -> float:
        """Wall seconds since :meth:`start` (or construction)."""
        return monotonic_s() - self._start

    @property
    def eta_s(self) -> float | None:
        """Projected remaining seconds (None before any progress)."""
        if not self.total or self.done == 0:
            return None
        remaining = max(self.total - self.done, 0)
        return remaining * self.elapsed_s / self.done

    def snapshot(self) -> ProgressEvent:
        """The current state as an event (without emitting it)."""
        return ProgressEvent(
            label=self.label,
            done=self.done,
            total=self.total,
            flips=self.flips,
            elapsed_s=self.elapsed_s,
            eta_s=self.eta_s,
        )

    def advance(self, n: int = 1, flips: int = 0) -> None:
        """Account ``n`` finished experiments (+ bitflips) and emit."""
        self.done += n
        self.flips += flips
        self.sink(self.snapshot())

    def finish(self) -> ProgressEvent:
        """Emit and return the final snapshot."""
        event = self.snapshot()
        self.sink(event)
        return event


class NullProgress(ProgressReporter):
    """Inert progress reporter (never emits)."""

    def __init__(self) -> None:
        super().__init__(sink=lambda event: None)

    def start(self, total: int | None = None, label: str | None = None) -> None:
        """No-op."""

    def advance(self, n: int = 1, flips: int = 0) -> None:
        """No-op."""

    def finish(self) -> ProgressEvent:
        """Returns an all-zero snapshot without emitting."""
        return self.snapshot()
