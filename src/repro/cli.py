"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``fleet`` — list the calibrated module catalog (Table 1),
* ``acmin`` — ACmin of one module across a t_AggON sweep,
* ``attack`` — run the §6 real-system RowPress attack grid,
* ``campaign`` — run a JSON campaign spec through the sharded engine
  (``--workers N --shard-size K --resume``) and save the records,
* ``serve`` — run the campaign service daemon (job queue + result
  cache + streaming progress; see ``docs/SERVICE.md``),
* ``submit`` — submit a campaign spec to a running service and save
  the results (byte-identical to a local ``campaign`` run),
* ``obs-report`` — summarize (and merge) metrics or trace files from
  prior runs, with p50/p90/p99 latency tables,
* ``lint`` — static analysis: source rules and the program verifier
  (also installed standalone as ``reprolint``).

``repro --version`` prints the package version (single-sourced from
``repro.__version__``; the service advertises the same string).

Observability flags are global: ``repro [-v] [--trace-out FILE]
[--metrics-out FILE] <command> ...`` works identically for every
subcommand.  ``--trace-out`` writes Chrome trace-event JSON (loadable
in ``chrome://tracing``), ``--metrics-out`` a counter/gauge/histogram
snapshot, and ``-v`` raises log verbosity (``-vv`` for debug) and
surfaces campaign progress lines.  The pre-redesign spellings after
the subcommand (``repro acmin S3 --trace-out f``) still work but emit
a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path

from repro import __version__, units
from repro.analysis.tables import format_table
from repro.lint.cli import configure_parser as configure_lint_parser
from repro.lint.cli import run_lint
from repro.obs import Observer, configure_logging, declare_standard_metrics, get_logger

logger = get_logger("cli")


def _build_observer(args: argparse.Namespace) -> Observer | None:
    """An active observer when any observability output was requested."""
    wants_obs = getattr(args, "trace_out", None) or getattr(args, "metrics_out", None)
    if not wants_obs and not args.verbose:
        return None
    observer = Observer.create(label=args.command or "run")
    declare_standard_metrics(observer.metrics)
    return observer


def _export_observability(args: argparse.Namespace, observer: Observer | None) -> None:
    """Write the trace/metrics files the flags asked for."""
    if observer is None:
        return
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        observer.tracer.write_chrome_trace(trace_out)
        logger.info("trace written to %s", trace_out)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        observer.metrics.write_json(metrics_out)
        logger.info("metrics written to %s", metrics_out)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.dram.catalog import DIE_CALIBRATIONS, MODULE_CATALOG

    rows = []
    for info in sorted(MODULE_CATALOG.values(), key=lambda i: i.module_id):
        calibration = DIE_CALIBRATIONS[info.die_key]
        rows.append(
            [
                info.module_id,
                info.manufacturer,
                info.die_key,
                info.organization,
                info.num_chips,
                f"{calibration.hammer_acmin_mean:,.0f}",
                f"{calibration.press_taggonmin_mean_ms:.1f}ms"
                if calibration.press_taggonmin_mean_ms
                else "none@50C",
            ]
        )
    print(
        format_table(
            ["id", "mfr", "die", "org", "chips", "hammer ACmin", "press tAggONmin"],
            rows,
            "Module catalog (Table 1 fleet)",
        )
    )
    return 0


def _cmd_acmin(args: argparse.Namespace) -> int:
    from repro.bender import TestingInfrastructure
    from repro.characterization import find_acmin
    from repro.characterization.patterns import RowSite
    from repro.dram import build_module
    from repro.dram.geometry import Geometry

    observer = args.observer
    geometry = Geometry(
        ranks=1, bank_groups=1, banks_per_group=2, rows_per_bank=256, row_bits=65536
    )
    try:
        module = build_module(args.module, geometry=geometry)
    except KeyError:
        logger.error("unknown module id %r (see `repro fleet`)", args.module)
        return 2
    bench = TestingInfrastructure(module, observer=observer)
    bench.module.device.set_temperature(args.temperature)
    site = RowSite(0, 1, args.row)
    rows = []
    for t_aggon in (36.0, 636.0, units.TREFI, 9 * units.TREFI, 30 * units.MS):
        acmin = find_acmin(bench, site, t_aggon, observer=observer)
        rows.append([units.format_time(t_aggon), f"{acmin:,}" if acmin else "-"])
    print(
        format_table(
            ["t_AggON", "ACmin"],
            rows,
            f"{args.module} row {args.row} @ {args.temperature:.0f}C",
        )
    )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.dram.geometry import RowAddress
    from repro.system import AttackParameters, build_demo_system, run_rowpress_attack

    observer = args.observer
    system = build_demo_system(rows_per_bank=4096)
    victims = [RowAddress(0, 1, 16 + 8 * i) for i in range(args.victims)]
    rows = []
    for acts in (1, 2, 3, 4):
        for reads in (1, 32, 64):
            params = AttackParameters(
                num_reads=reads, num_aggr_acts=acts, num_iterations=args.iterations
            )
            result = run_rowpress_attack(
                system, victims, params, max_windows=2, observer=observer
            )
            rows.append([acts, reads, result.total_bitflips, result.rows_with_bitflips])
    print(
        format_table(
            ["NUM_AGGR_ACTS", "NUM_READS", "bitflips", "rows"],
            rows,
            f"RowPress attack vs {args.victims} victims (TRR on)",
        )
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.characterization.campaign import CampaignSpec, save_results
    from repro.characterization.engine import run_engine

    try:
        spec_text = Path(args.spec).read_text()
    except OSError as error:
        logger.error("cannot read campaign spec %s: %s", args.spec, error)
        return 2
    try:
        spec = CampaignSpec.from_json(spec_text)
    except (ValueError, TypeError, KeyError) as error:
        logger.error("invalid campaign spec %s: %s", args.spec, error)
        return 2
    checkpoint = args.checkpoint or f"{args.output}.checkpoint.jsonl"
    profiler = None
    if args.profile_out:
        from repro.obs import SamplingProfiler

        profiler = SamplingProfiler()
        profiler.start()
    try:
        result = run_engine(
            spec,
            workers=args.workers,
            shard_size=args.shard_size,
            checkpoint=checkpoint,
            resume=args.resume,
            observer=args.observer,
            profiler=profiler,
        )
    except ValueError as error:
        logger.error("cannot run campaign: %s", error)
        return 2
    finally:
        if profiler is not None:
            profiler.stop()
            profiler.write_collapsed(args.profile_out)
            logger.info(
                "profile written to %s (%d samples)",
                args.profile_out,
                profiler.sample_count,
            )
    save_results(args.output, spec, result.records)
    print(f"{len(result.records)} records written to {args.output}")
    print(
        f"shards {result.shards_total - len(result.failures)}/"
        f"{result.shards_total} complete "
        f"({result.shards_resumed} resumed, {result.retries} retried)"
    )
    if result.failures:
        logger.error(
            "%d shard(s) failed permanently; see %s", len(result.failures), checkpoint
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        engine_workers=args.workers,
        shard_size=args.shard_size,
        queue_limit=args.queue_limit,
        rate_per_s=args.rate_per_s,
        rate_burst=args.rate_burst,
        backend=args.backend,
        lease_ttl_s=args.lease_ttl_s,
        port_file=args.port_file,
    )
    return serve(config, observer=args.observer)


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.fleet.worker import FleetWorker

    worker = FleetWorker(
        server_url=args.server,
        worker_id=args.worker_id,
        concurrency=args.concurrency,
        poll_s=args.poll_s,
        max_idle_s=args.max_idle_s,
        max_shards=args.max_shards,
    )
    stats = worker.run()
    print(
        f"worker {worker.worker_id}: {stats.shards_executed} shard(s) "
        f"executed, {stats.shards_discarded} discarded, "
        f"{stats.shards_failed} failed"
    )
    return 0 if not stats.errors else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.characterization.campaign import CampaignSpec
    from repro.obs import atomic_write_text
    from repro.service import ServiceClient, ServiceError

    try:
        spec_text = Path(args.spec).read_text()
    except OSError as error:
        logger.error("cannot read campaign spec %s: %s", args.spec, error)
        return 2
    try:
        spec = CampaignSpec.from_json(spec_text)
    except (ValueError, TypeError, KeyError) as error:
        logger.error("invalid campaign spec %s: %s", args.spec, error)
        return 2
    observer = args.observer
    client = ServiceClient(
        args.server,
        client_id=args.client_id,
        tracer=observer.tracer if observer is not None else None,
    )
    try:
        # The open span's context rides every request's X-Repro-Trace
        # header, so the server's spans (and the job's engine trace)
        # nest under this submission in the exported Chrome trace.
        with client.tracer.span(
            "cli.submit", campaign=spec.name, server=args.server
        ):
            submitted = client.submit(spec)
            print(f"job {submitted.job_id}: {submitted.outcome} ({submitted.state})")
            if args.follow and submitted.state not in ("done", "failed"):
                for event in client.stream_events(submitted.job_id):
                    if event.get("event") == "progress":
                        print(
                            f"  progress {event['done']}/{event['total']} "
                            f"({event['flips']} flips)"
                        )
                    elif event.get("event") in ("state", "done", "failed"):
                        print(f"  {event.get('event')}: "
                              f"{event.get('state', event.get('event'))}")
            final = client.wait(submitted.job_id, timeout_s=args.timeout)
            if final.state == "failed":
                logger.error("job %s failed: %s", final.job_id, final.error)
                return 1
            # Verbatim bytes: identical to a local `repro campaign` output.
            atomic_write_text(
                Path(args.output), client.fetch_results_text(final.job_id)
            )
    except ServiceError as error:
        logger.error("service request failed: %s", error)
        return 2
    except TimeoutError as error:
        logger.error("%s", error)
        return 1
    cached = " (served from result cache)" if final.cached else ""
    print(f"{final.records} records written to {args.output}{cached}")
    return 0


def _warehouse_db_path(args: argparse.Namespace) -> Path:
    """Resolve the warehouse file from ``--db`` / ``--data-dir``."""
    if args.db is not None:
        return Path(args.db)
    if args.data_dir is not None:
        return Path(args.data_dir) / "warehouse.sqlite3"
    raise SystemExit("one of --db or --data-dir is required")


def _cmd_warehouse(args: argparse.Namespace) -> int:
    from repro.warehouse import Warehouse, WarehouseError

    db_path = _warehouse_db_path(args)
    try:
        warehouse = Warehouse(db_path)
    except WarehouseError as error:
        if args.action != "rebuild":
            logger.error("%s", error)
            return 2
        # A schema-version mismatch on rebuild: the file is derived
        # state, so drop it and start over.
        Path(db_path).unlink(missing_ok=True)
        warehouse = Warehouse(db_path)
    try:
        if args.action == "rebuild":
            results_dir = (
                Path(args.results_dir)
                if args.results_dir is not None
                else Path(args.data_dir) / "results"
                if args.data_dir is not None
                else None
            )
            if results_dir is None:
                logger.error("rebuild needs --data-dir or --results-dir")
                return 2
            report = warehouse.rebuild_from_store(results_dir)
            print(
                f"rebuilt {db_path}: {report['records']} record(s) from "
                f"{report['sources']} source(s) in {results_dir}"
            )
            return 0
        if args.action == "ingest":
            if args.file is None:
                logger.error("ingest needs a results/checkpoint FILE")
                return 2
            path = Path(args.file)
            key = args.key if args.key is not None else path.stem
            try:
                if args.checkpoint:
                    count = warehouse.ingest_checkpoint_file(
                        path, key=key, finalize=args.finalize
                    )
                else:
                    count = warehouse.ingest_results_text(
                        path.read_text(), key=key
                    )
            except (OSError, ValueError, WarehouseError) as error:
                logger.error("ingest of %s failed: %s", path, error)
                return 1
            print(f"ingested {count} record(s) from {path} as {key!r}")
            return 0
        if args.action == "verify":
            report = warehouse.verify()
            print(json.dumps(report, indent=1))
            return 0 if report["ok"] else 1
        # stats
        print(json.dumps(warehouse.stats(), indent=1))
        return 0
    finally:
        warehouse.close()


def _cmd_analytics(args: argparse.Namespace) -> int:
    from repro.warehouse import REPORTS

    if args.report not in REPORTS:
        logger.error(
            "unknown report %r; known: %s", args.report, sorted(REPORTS)
        )
        return 2
    if args.server is not None:
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient(args.server, client_id=args.client_id)
        try:
            payload = client.analytics(
                args.report,
                experiment=args.experiment,
                module_id=args.module,
                die_key=args.die,
            )
        except ServiceError as error:
            logger.error("analytics request failed: %s", error)
            return 1
    else:
        from repro.warehouse import Warehouse, WarehouseError

        try:
            warehouse = Warehouse(_warehouse_db_path(args))
        except WarehouseError as error:
            logger.error("%s", error)
            return 2
        try:
            payload = warehouse.analytics(
                args.report,
                experiment=args.experiment,
                module_id=args.module,
                die_key=args.die,
            )
        finally:
            warehouse.close()
    text = json.dumps(payload, indent=1)
    if args.output is not None:
        from repro.obs import atomic_write_text

        atomic_write_text(Path(args.output), text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.bender import compile_program, disassemble
    from repro.bender.builder import (
        double_sided_pattern,
        onoff_pattern,
        single_sided_pattern,
    )
    from repro.dram.geometry import RowAddress
    from repro.dram.timing import DDR4_3200W

    timing = DDR4_3200W
    aggressor = RowAddress(args.rank, args.bank, args.row)
    t_aggoff = args.t_aggoff if args.t_aggoff is not None else timing.tRP
    try:
        if args.pattern == "single":
            program = single_sided_pattern(aggressor, args.t_aggon, args.count, timing)
        elif args.pattern == "double":
            program = double_sided_pattern(
                aggressor, aggressor.neighbor(2), args.t_aggon, args.count, timing
            )
        else:
            program = onoff_pattern(
                [aggressor], args.t_aggon, t_aggoff, args.count, timing
            )
        payload = compile_program(program, timing)
    except ValueError as error:
        logger.error("cannot compile %s pattern: %s", args.pattern, error)
        return 2
    print(disassemble(payload))
    print(
        f"{len(payload)} words, {len(payload.constants)} constants, "
        f"duration {units.format_time(payload.duration_ns)}"
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    return run_lint(args)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.testkit.cli import run_fuzz  # heavy deps load lazily

    return run_fuzz(args)


# ----------------------------------------------------------------------
# obs-report
# ----------------------------------------------------------------------


def _report_metrics(payload: dict) -> str:
    """Summary tables for a metrics snapshot (see MetricsRegistry)."""
    sections = []
    counters = payload.get("counters", [])
    if counters:
        rows = [
            [
                entry["name"],
                " ".join(f"{k}={v}" for k, v in sorted(entry["labels"].items())) or "-",
                f"{entry['value']:,}",
            ]
            for entry in counters
        ]
        sections.append(format_table(["counter", "labels", "value"], rows, "Counters"))
    gauges = payload.get("gauges", [])
    if gauges:
        rows = [
            [
                entry["name"],
                " ".join(f"{k}={v}" for k, v in sorted(entry["labels"].items())) or "-",
                f"{entry['value']:.4g}",
            ]
            for entry in gauges
        ]
        sections.append(format_table(["gauge", "labels", "value"], rows, "Gauges"))
    histograms = payload.get("histograms", [])
    if histograms:
        rows = [
            [
                entry["name"],
                " ".join(f"{k}={v}" for k, v in sorted(entry.get("labels", {}).items())) or "-",
                entry["count"],
                f"{entry['mean']:.4g}",
                f"{entry['p50']:.4g}",
                f"{entry.get('p90', 0.0):.4g}",
                f"{entry['p99']:.4g}",
                f"{entry['max']:.4g}",
            ]
            for entry in histograms
        ]
        sections.append(
            format_table(
                ["histogram", "labels", "count", "mean", "p50", "p90", "p99", "max"],
                rows,
                "Histograms",
            )
        )
    return "\n\n".join(sections) if sections else "(empty metrics file)"


def _report_trace(payload: dict) -> str:
    """Per-span-name aggregation of a Chrome trace file."""
    totals: dict[str, list[float]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        totals.setdefault(event["name"], []).append(event.get("dur", 0.0))
    rows = []
    for name in sorted(totals, key=lambda n: -sum(totals[n])):
        durs = totals[name]
        rows.append(
            [
                name,
                len(durs),
                f"{sum(durs) / 1e3:.2f}",
                f"{sum(durs) / len(durs) / 1e3:.3f}",
                f"{max(durs) / 1e3:.3f}",
            ]
        )
    if not rows:
        return "(no complete spans in trace file)"
    return format_table(
        ["span", "count", "total ms", "mean ms", "max ms"], rows, "Spans by total time"
    )


def _cmd_obs_report(args: argparse.Namespace) -> int:
    """Summarize one or more metrics snapshots and/or Chrome trace files.

    Multiple metrics files merge into one report (counters add, raw
    histogram values concatenate — the fleet view of a many-process
    run); multiple trace files concatenate their events.
    """
    from repro.obs import MetricsRegistry

    metrics_payloads: list[dict] = []
    trace_payloads: list[dict] = []
    for name in args.files:
        try:
            payload = json.loads(Path(name).read_text())
        except OSError as error:
            logger.error("cannot read %s: %s", name, error)
            return 2
        except json.JSONDecodeError as error:
            logger.error("%s is not valid JSON: %s", name, error)
            return 2
        if isinstance(payload, dict) and "traceEvents" in payload:
            trace_payloads.append(payload)
        elif isinstance(payload, dict) and (
            "counters" in payload or "histograms" in payload or "gauges" in payload
        ):
            metrics_payloads.append(payload)
        else:
            logger.error(
                "%s is neither a metrics snapshot nor a Chrome trace file", name
            )
            return 2
    sections = []
    if metrics_payloads:
        if len(metrics_payloads) == 1:
            merged = metrics_payloads[0]
        else:
            registry = MetricsRegistry()
            for payload in metrics_payloads:
                registry.merge_snapshot(payload)
            merged = registry.to_dict()
        sections.append(_report_metrics(merged))
    if trace_payloads:
        events = [
            event
            for payload in trace_payloads
            for event in payload.get("traceEvents", [])
        ]
        sections.append(_report_trace({"traceEvents": events}))
    print("\n\n".join(sections))
    return 0


# ----------------------------------------------------------------------


class _DeprecatedValueFlag(argparse.Action):
    """Old per-subcommand spelling of a global flag: warn, keep working."""

    def __call__(self, parser, namespace, values, option_string=None):
        message = (
            f"`{option_string}` after the subcommand is deprecated; pass it "
            f"before the subcommand: `repro {option_string} ... <command>`"
        )
        # Default warning filters hide DeprecationWarning outside
        # __main__, so also log it where CLI users will see it.
        warnings.warn(message, DeprecationWarning, stacklevel=2)
        logger.warning(message)
        setattr(namespace, self.dest, values)


def _add_global_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The unified observability flags, attached to the parent parser."""
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise log verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON (chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write a metrics snapshot JSON (see `repro obs-report`)",
    )


def _add_deprecated_obs_flags(subparser: argparse.ArgumentParser) -> None:
    """Accept the pre-redesign per-subcommand spellings with a warning.

    ``default=argparse.SUPPRESS`` keeps the subparser from clobbering a
    value the parent parser already put in the namespace.
    """
    subparser.add_argument(
        "--trace-out",
        action=_DeprecatedValueFlag,
        dest="trace_out",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    subparser.add_argument(
        "--metrics-out",
        action=_DeprecatedValueFlag,
        dest="metrics_out",
        metavar="FILE",
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="RowPress reproduction toolkit"
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
        help="print the package version and exit",
    )
    _add_global_obs_flags(parser)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("fleet", help="list the module catalog").set_defaults(
        handler=_cmd_fleet
    )

    acmin = commands.add_parser("acmin", help="ACmin sweep for one module")
    acmin.add_argument("module", help="catalog module id, e.g. S3")
    acmin.add_argument("--row", type=int, default=100)
    acmin.add_argument("--temperature", type=float, default=50.0)
    _add_deprecated_obs_flags(acmin)
    acmin.set_defaults(handler=_cmd_acmin)

    attack = commands.add_parser("attack", help="run the real-system demo")
    attack.add_argument("--victims", type=int, default=100)
    attack.add_argument("--iterations", type=int, default=200_000)
    _add_deprecated_obs_flags(attack)
    attack.set_defaults(handler=_cmd_attack)

    campaign = commands.add_parser(
        "campaign", help="run a campaign spec through the sharded engine"
    )
    campaign.add_argument("spec", help="path to a CampaignSpec JSON file")
    campaign.add_argument("--output", default="campaign_results.json")
    campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel worker processes (1 = in-process, no pool)",
    )
    campaign.add_argument(
        "--shard-size",
        type=int,
        default=4,
        help="row sites per work shard (smaller = finer checkpoints)",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip shards already recorded in the checkpoint file",
    )
    campaign.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="shard checkpoint JSONL (default: <output>.checkpoint.jsonl)",
    )
    campaign.add_argument(
        "--profile-out",
        metavar="FILE",
        default=None,
        help="write a collapsed-stack sampling profile (flamegraph input); "
        "with --workers N the pool workers are sampled too",
    )
    _add_deprecated_obs_flags(campaign)
    campaign.set_defaults(handler=_cmd_campaign)

    serve_cmd = commands.add_parser(
        "serve", help="run the campaign service daemon"
    )
    serve_cmd.add_argument(
        "--data-dir",
        default="service-data",
        help="state directory: jobs, checkpoints, result store",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=8023, help="TCP port (0 = pick a free one)"
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker processes per job (1 = in-process)",
    )
    serve_cmd.add_argument(
        "--shard-size",
        type=int,
        default=4,
        help="row sites per work shard (smaller = finer checkpoints)",
    )
    serve_cmd.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="max queued jobs before 429 backpressure",
    )
    serve_cmd.add_argument(
        "--rate-per-s",
        type=float,
        default=50.0,
        help="per-client submission token refill rate",
    )
    serve_cmd.add_argument(
        "--rate-burst",
        type=float,
        default=100.0,
        help="per-client submission token bucket size",
    )
    serve_cmd.add_argument(
        "--backend",
        choices=("local", "fleet"),
        default="local",
        help="where jobs execute: this process (local) or leased "
        "shard-by-shard to `repro worker` processes (fleet)",
    )
    serve_cmd.add_argument(
        "--lease-ttl-s",
        type=float,
        default=10.0,
        help="fleet lease TTL: heartbeat within this window or the "
        "shard is reassigned",
    )
    serve_cmd.add_argument(
        "--port-file",
        metavar="FILE",
        default=None,
        help="write the bound port here once listening (for --port 0)",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)

    worker_cmd = commands.add_parser(
        "worker",
        help="run a fleet worker: lease shards from a `repro serve "
        "--backend fleet` server and execute them",
    )
    worker_cmd.add_argument(
        "--server",
        required=True,
        metavar="URL",
        help="service base URL, e.g. http://127.0.0.1:8023",
    )
    worker_cmd.add_argument(
        "--concurrency",
        type=int,
        default=1,
        help="shards executed in parallel by this worker process",
    )
    worker_cmd.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: worker-<host>-<pid>)",
    )
    worker_cmd.add_argument(
        "--poll-s",
        type=float,
        default=0.25,
        help="idle poll interval when no shards are available",
    )
    worker_cmd.add_argument(
        "--max-idle-s",
        type=float,
        default=None,
        help="exit after this long without being granted a shard",
    )
    worker_cmd.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="exit after executing this many shards",
    )
    worker_cmd.set_defaults(handler=_cmd_worker)

    submit = commands.add_parser(
        "submit", help="submit a campaign spec to a running service"
    )
    submit.add_argument("spec", help="path to a CampaignSpec JSON file")
    submit.add_argument(
        "--server",
        required=True,
        metavar="URL",
        help="service base URL, e.g. http://127.0.0.1:8023",
    )
    submit.add_argument("--output", default="campaign_results.json")
    submit.add_argument(
        "--client-id",
        default=None,
        help="rate-limiting identity (default: the client's IP)",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="give up waiting for the job after this many seconds",
    )
    submit.add_argument(
        "--follow",
        action="store_true",
        help="print the job's progress events while waiting",
    )
    submit.set_defaults(handler=_cmd_submit)

    warehouse_cmd = commands.add_parser(
        "warehouse",
        help="maintain the columnar result warehouse (derived SQLite index)",
        description=(
            "The warehouse indexes schema-v2 results for aggregate "
            "queries (see docs/WAREHOUSE.md).  It is derived state: "
            "'rebuild' drops everything and re-ingests the JSONL "
            "results store, converging after any crash or version "
            "bump; 'verify' reports torn ingests; 'ingest' backfills "
            "one results file or streams an engine checkpoint."
        ),
    )
    warehouse_cmd.add_argument(
        "action",
        choices=("rebuild", "ingest", "verify", "stats"),
        help="maintenance action",
    )
    warehouse_cmd.add_argument(
        "file",
        nargs="?",
        default=None,
        help="results JSON (or checkpoint JSONL with --checkpoint) to ingest",
    )
    warehouse_cmd.add_argument(
        "--db", default=None, help="warehouse file (default: DATA_DIR/warehouse.sqlite3)"
    )
    warehouse_cmd.add_argument(
        "--data-dir", default=None, help="service data directory"
    )
    warehouse_cmd.add_argument(
        "--results-dir",
        default=None,
        help="results store to rebuild from (default: DATA_DIR/results)",
    )
    warehouse_cmd.add_argument(
        "--key", default=None, help="source key for ingest (default: file stem)"
    )
    warehouse_cmd.add_argument(
        "--checkpoint",
        action="store_true",
        help="FILE is an engine checkpoint JSONL (streams shards exactly-once)",
    )
    warehouse_cmd.add_argument(
        "--finalize",
        action="store_true",
        help="mark the source complete after a checkpoint ingest",
    )
    warehouse_cmd.set_defaults(handler=_cmd_warehouse)

    analytics_cmd = commands.add_parser(
        "analytics",
        help="query warehouse aggregates (acmin/temperature/ber/sweep/modules)",
        description=(
            "Run one analytics report against a local warehouse file "
            "(--db/--data-dir) or a running service (--server).  "
            "Reports: acmin (percentiles per die revision), temperature "
            "(per-die deltas), ber (BER curves), sweep (per-die series "
            "over an experiment's sweep axis), modules (per-module "
            "summaries)."
        ),
    )
    analytics_cmd.add_argument(
        "report", help="report name: acmin, temperature, ber, sweep, or modules"
    )
    analytics_cmd.add_argument("--db", default=None, help="warehouse file")
    analytics_cmd.add_argument(
        "--data-dir", default=None, help="service data directory"
    )
    analytics_cmd.add_argument(
        "--server", default=None, help="service URL (query over HTTP instead)"
    )
    analytics_cmd.add_argument(
        "--client-id", default=None, help="rate-limiting identity for --server"
    )
    analytics_cmd.add_argument(
        "--experiment", default=None, help="narrow to one experiment"
    )
    analytics_cmd.add_argument(
        "--module", default=None, help="narrow to one module id"
    )
    analytics_cmd.add_argument(
        "--die", default=None, help="narrow to one die revision key"
    )
    analytics_cmd.add_argument(
        "--output", default=None, help="write the report JSON here"
    )
    analytics_cmd.set_defaults(handler=_cmd_analytics)

    report = commands.add_parser(
        "obs-report", help="summarize (and merge) metrics or trace files"
    )
    report.add_argument(
        "files",
        nargs="+",
        help="metrics JSON and/or Chrome trace JSON files (merged per kind)",
    )
    report.set_defaults(handler=_cmd_obs_report)

    lint = commands.add_parser(
        "lint", help="static analysis: lint source / verify command programs"
    )
    configure_lint_parser(lint)
    lint.set_defaults(handler=_cmd_lint)

    compile_cmd = commands.add_parser(
        "compile",
        help="compile an access pattern to payload ISA words and disassemble",
    )
    compile_cmd.add_argument(
        "pattern",
        choices=("single", "double", "onoff"),
        help="access-pattern builder (Figs. 5, 16, 21)",
    )
    compile_cmd.add_argument(
        "--count", type=int, default=1000, help="aggressor activations"
    )
    compile_cmd.add_argument(
        "--t-aggon", type=float, default=36.0, help="aggressor-row on-time, ns"
    )
    compile_cmd.add_argument(
        "--t-aggoff",
        type=float,
        default=None,
        help="off-time for the onoff pattern, ns (default: tRP)",
    )
    compile_cmd.add_argument("--rank", type=int, default=0)
    compile_cmd.add_argument("--bank", type=int, default=1)
    compile_cmd.add_argument("--row", type=int, default=100)
    compile_cmd.set_defaults(handler=_cmd_compile)

    fuzz = commands.add_parser(
        "fuzz", help="property-fuzz the model against the paper's oracles"
    )
    fuzz.add_argument(
        "target",
        nargs="?",
        default="all",
        help="oracle name, or 'all' (see --list)",
    )
    fuzz.add_argument("--seed", type=int, default=2023, help="root RNG seed")
    fuzz.add_argument(
        "--max-examples",
        type=int,
        default=None,
        help="examples per oracle (default: per-oracle budget)",
    )
    fuzz.add_argument(
        "--shrink",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="minimize failing inputs before reporting (--no-shrink to skip)",
    )
    fuzz.add_argument(
        "--self-check",
        action="store_true",
        help="mutation self-check: each oracle must catch its planted bug",
    )
    fuzz.add_argument(
        "--corpus",
        default=None,
        help="regression-corpus directory to replay and extend",
    )
    fuzz.add_argument(
        "--list", action="store_true", help="list oracles and exit"
    )
    fuzz.set_defaults(handler=_cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose)
    args.observer = _build_observer(args)
    code = args.handler(args)
    _export_observability(args, args.observer)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
