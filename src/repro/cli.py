"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``fleet`` — list the calibrated module catalog (Table 1),
* ``acmin`` — ACmin of one module across a t_AggON sweep,
* ``attack`` — run the §6 real-system RowPress attack grid,
* ``campaign`` — run a JSON campaign spec and save the records.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import units
from repro.analysis.tables import format_table


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.dram.catalog import DIE_CALIBRATIONS, MODULE_CATALOG

    rows = []
    for info in sorted(MODULE_CATALOG.values(), key=lambda i: i.module_id):
        calibration = DIE_CALIBRATIONS[info.die_key]
        rows.append(
            [
                info.module_id,
                info.manufacturer,
                info.die_key,
                info.organization,
                info.num_chips,
                f"{calibration.hammer_acmin_mean:,.0f}",
                f"{calibration.press_taggonmin_mean_ms:.1f}ms"
                if calibration.press_taggonmin_mean_ms
                else "none@50C",
            ]
        )
    print(
        format_table(
            ["id", "mfr", "die", "org", "chips", "hammer ACmin", "press tAggONmin"],
            rows,
            "Module catalog (Table 1 fleet)",
        )
    )
    return 0


def _cmd_acmin(args: argparse.Namespace) -> int:
    from repro.bender import TestingInfrastructure
    from repro.characterization import find_acmin
    from repro.characterization.patterns import RowSite
    from repro.dram import build_module
    from repro.dram.geometry import Geometry

    geometry = Geometry(
        ranks=1, bank_groups=1, banks_per_group=2, rows_per_bank=256, row_bits=65536
    )
    bench = TestingInfrastructure(build_module(args.module, geometry=geometry))
    bench.module.device.set_temperature(args.temperature)
    site = RowSite(0, 1, args.row)
    rows = []
    for t_aggon in (36.0, 636.0, units.TREFI, 9 * units.TREFI, 30 * units.MS):
        acmin = find_acmin(bench, site, t_aggon)
        rows.append([units.format_time(t_aggon), f"{acmin:,}" if acmin else "-"])
    print(
        format_table(
            ["t_AggON", "ACmin"],
            rows,
            f"{args.module} row {args.row} @ {args.temperature:.0f}C",
        )
    )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.dram.geometry import RowAddress
    from repro.system import AttackParameters, build_demo_system, run_rowpress_attack

    system = build_demo_system(rows_per_bank=4096)
    victims = [RowAddress(0, 1, 16 + 8 * i) for i in range(args.victims)]
    rows = []
    for acts in (1, 2, 3, 4):
        for reads in (1, 32, 64):
            params = AttackParameters(
                num_reads=reads, num_aggr_acts=acts, num_iterations=args.iterations
            )
            result = run_rowpress_attack(system, victims, params, max_windows=2)
            rows.append([acts, reads, result.total_bitflips, result.rows_with_bitflips])
    print(
        format_table(
            ["NUM_AGGR_ACTS", "NUM_READS", "bitflips", "rows"],
            rows,
            f"RowPress attack vs {args.victims} victims (TRR on)",
        )
    )
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.characterization.campaign import (
        CampaignSpec,
        run_campaign,
        save_results,
    )

    spec = CampaignSpec.from_json(Path(args.spec).read_text())
    records = run_campaign(spec)
    save_results(args.output, spec, records)
    print(f"{len(records)} records written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="RowPress reproduction toolkit"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("fleet", help="list the module catalog").set_defaults(
        handler=_cmd_fleet
    )

    acmin = commands.add_parser("acmin", help="ACmin sweep for one module")
    acmin.add_argument("module", help="catalog module id, e.g. S3")
    acmin.add_argument("--row", type=int, default=100)
    acmin.add_argument("--temperature", type=float, default=50.0)
    acmin.set_defaults(handler=_cmd_acmin)

    attack = commands.add_parser("attack", help="run the real-system demo")
    attack.add_argument("--victims", type=int, default=100)
    attack.add_argument("--iterations", type=int, default=200_000)
    attack.set_defaults(handler=_cmd_attack)

    campaign = commands.add_parser("campaign", help="run a campaign spec")
    campaign.add_argument("spec", help="path to a CampaignSpec JSON file")
    campaign.add_argument("--output", default="campaign_results.json")
    campaign.set_defaults(handler=_cmd_campaign)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
