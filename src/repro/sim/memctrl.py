"""Memory controller: per-bank queues, FR-FCFS, policies, mitigations.

FR-FCFS (Table 7): within a bank's queue, a ready row hit is served
before older non-hits; otherwise the oldest request wins.  The row policy
decides how long rows stay open; the mitigation observes activations and
injects preventive refreshes (each modeled as one row cycle occupying the
bank).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import TimingParameters
from repro.mitigation.base import Mitigation, NoMitigation
from repro.obs import NULL_OBSERVER, Observer
from repro.sim.dram_model import DramState
from repro.sim.request import Request, RequestType
from repro.sim.rowpolicy import DecoupledBufferPolicy, OpenRowPolicy, RowPolicy
from repro.sim.stats import SimStats


@dataclass
class ServiceOutcome:
    """Result of scheduling one request on a bank."""

    request: Request
    data_ready_ns: float
    kind: str  # "hit" | "miss" | "conflict"


class MemoryController:
    """One-channel controller over a :class:`DramState`."""

    def __init__(
        self,
        dram: DramState,
        policy: RowPolicy | None = None,
        mitigation: Mitigation | None = None,
        stats: SimStats | None = None,
        queue_capacity: int = 64,
        observer: Observer | None = None,
    ) -> None:
        self.dram = dram
        self.policy = policy or OpenRowPolicy()
        self.mitigation = mitigation or NoMitigation()
        self.stats = stats or SimStats()
        self.queue_capacity = queue_capacity
        self.observer = observer or NULL_OBSERVER
        self.queues: dict[tuple[int, int], list[Request]] = {
            key: [] for key in dram.banks
        }
        self._queued = 0
        #: Snapshot of counters already pushed by :meth:`flush_metrics`.
        self._flushed: dict[str, int] = {}
        #: Optional security hook (repro.mitigation.security).
        self.exposure_tracker = None

    # ------------------------------------------------------------------

    @property
    def timing(self) -> TimingParameters:
        """Channel timing parameters."""
        return self.dram.timing

    def enqueue(self, request: Request, now_ns: float) -> bool:
        """Accept a request into its bank queue; False when full."""
        if self._queued >= self.queue_capacity:
            return False
        request.arrival_ns = now_ns
        self.queues[request.bank_key].append(request)
        self._queued += 1
        return True

    def has_work(self, key: tuple[int, int]) -> bool:
        """Whether a bank has queued requests."""
        return bool(self.queues[key])

    # ------------------------------------------------------------------

    def _apply_forced_close(self, key: tuple[int, int], now_ns: float) -> None:
        """Enact the row policy's t_mro cap if it expired."""
        bank = self.dram.bank(*key)
        if bank.open_row is None:
            return
        close_at = self.policy.forced_close_time(bank)
        if close_at is not None and now_ns >= close_at:
            bank.close(close_at, self.timing)

    def _activate(self, key: tuple[int, int], row: int, act_time: float) -> float:
        """Issue an ACT with mitigation + stats hooks; returns extra delay."""
        rank, bank_index = key
        bank = self.dram.bank(*key)
        throttle = self.mitigation.activation_delay(rank, bank_index, row, act_time)
        if throttle > 0:
            act_time += throttle  # blacklisted row: the ACT waits
        bank.open_row = row
        bank.open_since = act_time
        bank.last_act = act_time
        self.stats.record_activation(rank, bank_index, row)
        if self.exposure_tracker is not None:
            self.exposure_tracker.on_activation(rank, bank_index, row)
        victims = self.mitigation.on_activation(rank, bank_index, row, act_time)
        extra = throttle
        for victim in victims:
            extra += self.timing.tRC  # each preventive refresh: one row cycle
            self.stats.preventive_refreshes += 1
            if self.exposure_tracker is not None:
                self.exposure_tracker.on_refresh(rank, bank_index, victim)
        return extra

    def serve(self, key: tuple[int, int], now_ns: float) -> ServiceOutcome | float | None:
        """Try to schedule one request on a bank.

        Returns a :class:`ServiceOutcome`, a retry time (bank busy), or
        ``None`` (queue empty).
        """
        queue = self.queues[key]
        if not queue:
            return None
        bank = self.dram.bank(*key)
        if bank.ready > now_ns + 1e-9:
            return bank.ready
        self._apply_forced_close(key, now_ns)
        if bank.ready > now_ns + 1e-9:
            return bank.ready
        timing = self.timing
        open_row = bank.open_row if self.policy.row_still_open(bank, now_ns) else None
        # FR-FCFS: first ready row hit, else the oldest request.
        request = next((r for r in queue if r.row == open_row), queue[0])
        queue.remove(request)
        self._queued -= 1

        if open_row == request.row and open_row is not None:
            data_ready = now_ns + timing.tCL + timing.tBL
            bank.ready = now_ns + timing.tCCD
            kind = "hit"
            if (
                request.kind is RequestType.WRITE
                and isinstance(self.policy, DecoupledBufferPolicy)
            ):
                # Writes must re-assert the de-asserted wordline (§7.2).
                penalty = self.policy.write_reconnect_penalty
                data_ready += penalty
                bank.ready += penalty
        else:
            if bank.open_row is not None:
                act_time = bank.close(now_ns, timing)
                kind = "conflict"
            else:
                act_time = max(now_ns, bank.last_act + timing.tRC)
                kind = "miss"
            act_time = self.dram.earliest_act(key[0], act_time)
            self.dram.record_act(key[0], act_time)
            extra = self._activate(key, request.row, act_time)
            data_ready = act_time + timing.tRCD + timing.tCL + timing.tBL + extra
            bank.ready = act_time + timing.tRCD + timing.tCCD + extra
        if self.policy.close_after_access():
            bank.close(data_ready, timing)
        self.stats.record_access(request.core_id, kind)
        request.complete_ns = data_ready
        return ServiceOutcome(request=request, data_ready_ns=data_ready, kind=kind)

    # ------------------------------------------------------------------

    def refresh_rank(self, rank: int, now_ns: float) -> None:
        """Periodic REF for a rank."""
        self.dram.refresh_rank(rank, now_ns)
        self.stats.refresh_commands += 1

    def refresh_window_elapsed(self, now_ns: float) -> None:
        """tREFW boundary: epoch resets."""
        self.mitigation.on_refresh_window(now_ns)
        self.stats.rotate_window()
        if self.exposure_tracker is not None:
            self.exposure_tracker.on_refresh_window()

    # ------------------------------------------------------------------

    def flush_metrics(self) -> None:
        """Push accumulated stats into the observer's metrics registry.

        Counters record the delta since the previous flush, so calling
        this repeatedly (e.g. once per simulation phase) never
        double-counts.  No-op under the null observer.
        """
        metrics = self.observer.metrics
        stats = self.stats
        totals = {
            "memctrl.requests_served": stats.accesses,
            "memctrl.row_hits": stats.row_hits,
            "memctrl.row_misses": stats.row_misses,
            "memctrl.row_conflicts": stats.row_conflicts,
            "memctrl.activations": stats.activations,
            "memctrl.refresh_commands": stats.refresh_commands,
            "memctrl.preventive_refreshes": stats.preventive_refreshes,
        }
        for name, total in totals.items():
            delta = total - self._flushed.get(name, 0)
            if delta:
                metrics.counter(name).inc(delta)
            self._flushed[name] = total
        metrics.gauge("memctrl.row_hit_rate").set(stats.row_hit_rate)
