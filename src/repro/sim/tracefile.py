"""Ramulator-format trace files.

The paper's mitigation study consumes Ramulator CPU traces; users with
real traces can load them here instead of the synthetic generators.  The
supported format is Ramulator's classic CPU trace: one request per line,

    <num-cpu-instructions> <read-address> [<write-address>]

where addresses are hex or decimal physical addresses.  Addresses are
mapped to DRAM coordinates with a row-bank-column split compatible with
:class:`repro.sim.dram_model.DramState`.  Writing synthetic workloads out
in the same format makes the two pipelines interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from repro.sim.request import Request, RequestType
from repro.sim.trace import SyntheticWorkload, WorkloadSpec


@dataclass(frozen=True)
class TraceAddressMap:
    """Simple row:rank:bank:column physical-address split."""

    column_bits: int = 7
    bank_bits: int = 4
    rank_bits: int = 1
    block_offset_bits: int = 6

    def dram_address(self, physical: int) -> tuple[int, int, int, int]:
        """(rank, bank, row, column) of a physical address."""
        value = physical >> self.block_offset_bits
        column = value & ((1 << self.column_bits) - 1)
        value >>= self.column_bits
        bank = value & ((1 << self.bank_bits) - 1)
        value >>= self.bank_bits
        rank = value & ((1 << self.rank_bits) - 1)
        row = value >> self.rank_bits
        return rank, bank, row, column

    def physical_address(self, rank: int, bank: int, row: int, column: int) -> int:
        """Inverse of :meth:`dram_address`."""
        value = row
        value = (value << self.rank_bits) | rank
        value = (value << self.bank_bits) | bank
        value = (value << self.column_bits) | column
        return value << self.block_offset_bits


def _parse_address(token: str) -> int:
    return int(token, 16) if token.lower().startswith("0x") else int(token)


def load_trace(
    path: str | Path,
    core_id: int = 0,
    mapping: TraceAddressMap | None = None,
    limit: int | None = None,
) -> list[tuple[int, Request]]:
    """Load a Ramulator CPU trace into a core request stream."""
    mapping = mapping or TraceAddressMap()
    stream: list[tuple[int, Request]] = []
    instruction = 0
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            tokens = line.split()
            if len(tokens) < 2:
                raise ValueError(f"{path}:{line_number}: malformed trace line")
            gap = int(tokens[0])
            instruction += gap + 1
            rank, bank, row, column = mapping.dram_address(_parse_address(tokens[1]))
            stream.append(
                (
                    gap,
                    Request(
                        core_id=core_id,
                        rank=rank,
                        bank=bank,
                        row=row,
                        column=column,
                        kind=RequestType.READ,
                        instruction_index=instruction,
                    ),
                )
            )
            if len(tokens) >= 3:
                rank, bank, row, column = mapping.dram_address(
                    _parse_address(tokens[2])
                )
                stream.append(
                    (
                        0,
                        Request(
                            core_id=core_id,
                            rank=rank,
                            bank=bank,
                            row=row,
                            column=column,
                            kind=RequestType.WRITE,
                            instruction_index=instruction,
                        ),
                    )
                )
            if limit is not None and len(stream) >= limit:
                break
    return stream


def dump_trace(
    path: str | Path,
    stream: list[tuple[int, Request]],
    mapping: TraceAddressMap | None = None,
) -> None:
    """Write a request stream as a Ramulator CPU trace.

    Consecutive (read, zero-gap write) pairs collapse into one
    three-token line.  The classic format cannot express a standalone
    write, so each one is emitted as a same-address read+write line —
    the write is preserved exactly and a companion read of the same
    block is added (loading such a file yields one extra read per
    standalone write).
    """
    mapping = mapping or TraceAddressMap()
    lines: list[str] = []
    index = 0
    while index < len(stream):
        gap, request = stream[index]
        address = mapping.physical_address(
            request.rank, request.bank, request.row, request.column
        )
        if request.kind is RequestType.WRITE:
            # standalone write: emit as a zero-gap read-less line pair
            lines.append(f"{gap} 0x{address:x} 0x{address:x}")
            index += 1
            continue
        line = f"{gap} 0x{address:x}"
        if (
            index + 1 < len(stream)
            and stream[index + 1][1].kind is RequestType.WRITE
            and stream[index + 1][0] == 0
        ):
            write = stream[index + 1][1]
            write_address = mapping.physical_address(
                write.rank, write.bank, write.row, write.column
            )
            line += f" 0x{write_address:x}"
            index += 1
        lines.append(line)
        index += 1
    Path(path).write_text("\n".join(lines) + "\n")


def export_synthetic(
    path: str | Path,
    spec: WorkloadSpec,
    count: int,
    core_id: int = 0,
    seed: int = 1,
) -> None:
    """Generate a synthetic workload and save it as a trace file."""
    workload = SyntheticWorkload(spec, core_id, seed=seed)
    dump_trace(path, list(workload.requests(count)))
