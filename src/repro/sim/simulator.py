"""Discrete-event multi-core simulation driver.

Assembles cores (trace-driven), the memory controller, and refresh into
one event loop, and reports per-core IPC plus the shared stats.  The
weighted-speedup metric follows the paper's multi-core methodology
(App. D.2): sum over cores of IPC_shared / IPC_alone.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.mitigation.base import Mitigation
from repro.obs import NULL_OBSERVER, Observer, monotonic_s
from repro.sim.core import CoreModel
from repro.sim.dram_model import DramState
from repro.sim.memctrl import MemoryController
from repro.sim.request import RequestType
from repro.sim.rowpolicy import RowPolicy
from repro.sim.stats import SimStats
from repro.sim.trace import WORKLOADS, SyntheticWorkload, WorkloadSpec


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    workloads: list[str]
    ipc: dict[int, float]
    stats: SimStats
    duration_ns: float
    preventive_refreshes: int

    def ipc_of(self, core_id: int) -> float:
        """IPC of one core."""
        return self.ipc[core_id]


def weighted_speedup(shared: SimulationResult, alone: dict[int, float]) -> float:
    """Sum of IPC_shared / IPC_alone over cores (Snavely & Tullsen)."""
    total = 0.0
    for core_id, ipc in shared.ipc.items():
        baseline = alone.get(core_id, 0.0)
        if baseline > 0:
            total += ipc / baseline
    return total


class Simulator:
    """One simulated system: N cores sharing a DDR4 channel."""

    def __init__(
        self,
        workloads: list[str | WorkloadSpec],
        requests_per_core: int = 20_000,
        policy: RowPolicy | None = None,
        mitigation: Mitigation | None = None,
        ranks: int = 2,
        banks: int = 16,
        seed: int = 1,
        max_sim_ns: float = 2.0e9,
        observer: Observer | None = None,
    ) -> None:
        self.specs = [
            spec if isinstance(spec, WorkloadSpec) else WORKLOADS[spec]
            for spec in workloads
        ]
        self.observer = observer or NULL_OBSERVER
        self.dram = DramState(ranks=ranks, banks_per_rank=banks)
        self.stats = SimStats()
        self.mc = MemoryController(
            self.dram,
            policy=policy,
            mitigation=mitigation,
            stats=self.stats,
            observer=self.observer,
        )
        self.cores: list[CoreModel] = []
        for core_id, spec in enumerate(self.specs):
            workload = SyntheticWorkload(
                spec, core_id, ranks=ranks, banks=banks, seed=seed
            )
            stream = list(workload.requests(requests_per_core))
            self.cores.append(CoreModel(core_id=core_id, stream=stream))
        self.max_sim_ns = max_sim_ns
        self._heap: list[tuple[float, int, str, object]] = []
        self._sequence = itertools.count()
        self._bank_pending: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------------

    def _push(self, time_ns: float, kind: str, payload: object) -> None:
        heapq.heappush(self._heap, (time_ns, next(self._sequence), kind, payload))

    def _push_bank(self, time_ns: float, key: tuple[int, int]) -> None:
        pending = self._bank_pending.get(key)
        if pending is not None and pending <= time_ns + 1e-9:
            return
        self._bank_pending[key] = time_ns
        self._push(time_ns, "bank", key)

    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run to completion; returns IPC and stats.

        When the simulator has an active observer, the whole run is one
        ``sim.run`` span and the controller's row-buffer statistics are
        flushed into the metrics registry at the end.
        """
        obs = self.observer
        # Host-time profiling is intentional (observability, not simulated
        # time); monotonic_s is the codebase's one sanctioned clock read.
        wall_start = monotonic_s()
        with obs.span(
            "sim.run",
            workloads=",".join(spec.name for spec in self.specs),
            mitigation=self.mc.mitigation.name,
        ) as span:
            result, events = self._run_events()
            span.set(
                duration_ns=result.duration_ns,
                events=events,
                requests=self.stats.accesses,
            )
        wall = monotonic_s() - wall_start
        obs.metrics.counter("sim.runs").inc()
        obs.metrics.counter("sim.events").inc(events)
        if wall > 0:
            obs.metrics.histogram("sim.ns_per_wall_s").record(
                result.duration_ns / wall
            )
        self.mc.flush_metrics()
        return result

    def _run_events(self) -> tuple[SimulationResult, int]:
        """The event loop proper; returns (result, events handled)."""
        timing = self.dram.timing
        for core in self.cores:
            self._push(0.0, "core", core.core_id)
        for rank in range(self.dram.ranks):
            self._push(timing.tREFI * (1 + 0.1 * rank), "refresh", rank)
        self._push(timing.tREFW, "window", None)

        now = 0.0
        events = 0
        while self._heap:
            now, _, kind, payload = heapq.heappop(self._heap)
            events += 1
            if now > self.max_sim_ns:
                break
            if kind == "core":
                self._handle_core(self.cores[payload], now)
            elif kind == "bank":
                self._handle_bank(payload, now)
            elif kind == "refresh":
                self.mc.refresh_rank(payload, now)
                self._push(now + timing.tREFI, "refresh", payload)
                for key in self.dram.banks:
                    if key[0] == payload and self.mc.has_work(key):
                        self._push_bank(self.dram.bank(*key).ready, key)
                if all(core.done for core in self.cores):
                    break
            elif kind == "window":
                self.mc.refresh_window_elapsed(now)
                self._push(now + timing.tREFW, "window", None)
                if all(core.done for core in self.cores):
                    break
            elif kind == "complete":
                core_id, request = payload
                self.cores[core_id].complete(request, now)
                self._push(now, "core", core_id)
            if all(core.done for core in self.cores):
                break

        now = self._drain_writes(now)
        duration = max((core.finish_ns or now) for core in self.cores)
        ipc = {core.core_id: core.ipc() for core in self.cores}
        result = SimulationResult(
            workloads=[spec.name for spec in self.specs],
            ipc=ipc,
            stats=self.stats,
            duration_ns=duration,
            preventive_refreshes=self.mc.mitigation.preventive_refreshes,
        )
        return result, events

    def _drain_writes(self, now: float) -> float:
        """Serve any writes still buffered after the cores retire.

        Cores do not wait for writes, so the event loop can end with
        write requests in bank queues; real controllers drain them in
        the background.  Keeps the access accounting conservative.
        """
        for key in self.dram.banks:
            guard = 0
            while self.mc.has_work(key) and guard < 10_000:
                guard += 1
                outcome = self.mc.serve(key, now)
                if outcome is None:
                    break
                if isinstance(outcome, float):
                    now = outcome
        return now

    # ------------------------------------------------------------------

    def _handle_core(self, core: CoreModel, now: float) -> None:
        while True:
            request, retry = core.next_issue_constraint(now)
            if request is None:
                if retry is not None:
                    self._push(retry, "core", core.core_id)
                return
            if not self.mc.enqueue(request, now):
                self._push(now + 10.0, "core", core.core_id)
                return
            core.issue(request, now)
            bank = self.dram.bank(*request.bank_key)
            self._push_bank(max(now, bank.ready), request.bank_key)
            if request.kind is RequestType.WRITE:
                continue  # writes do not block the core

    def _handle_bank(self, key: tuple[int, int], now: float) -> None:
        self._bank_pending.pop(key, None)
        outcome = self.mc.serve(key, now)
        if outcome is None:
            return
        if isinstance(outcome, float):
            self._push_bank(outcome, key)
            return
        request = outcome.request
        if request.kind is RequestType.READ:
            self._push(outcome.data_ready_ns, "complete", (request.core_id, request))
        if self.mc.has_work(key):
            bank = self.dram.bank(*key)
            self._push_bank(max(now, bank.ready), key)


def run_alone_baselines(
    workload_names: list[str],
    requests_per_core: int = 20_000,
    policy: RowPolicy | None = None,
    mitigation_factory=None,
    seed: int = 1,
) -> dict[str, float]:
    """Single-core IPC of each workload (the weighted-speedup divisor)."""
    baselines: dict[str, float] = {}
    for name in workload_names:
        mitigation = mitigation_factory() if mitigation_factory else None
        sim = Simulator(
            [name],
            requests_per_core=requests_per_core,
            policy=policy,
            mitigation=mitigation,
            seed=seed,
        )
        baselines[name] = sim.run().ipc_of(0)
    return baselines
