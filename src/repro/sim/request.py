"""Memory request type shared by the core, controller, and DRAM model."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class RequestType(str, Enum):
    """Kind of memory request."""

    READ = "read"
    WRITE = "write"


@dataclass
class Request:
    """One memory request traveling core -> MC -> DRAM -> core."""

    core_id: int
    rank: int
    bank: int
    row: int
    column: int
    kind: RequestType = RequestType.READ
    arrival_ns: float = 0.0
    complete_ns: float | None = None
    #: Instruction index in the core's stream (for window accounting).
    instruction_index: int = 0

    @property
    def bank_key(self) -> tuple[int, int]:
        """(rank, bank) routing key."""
        return (self.rank, self.bank)

    @property
    def latency_ns(self) -> float:
        """Service latency (requires completion)."""
        if self.complete_ns is None:
            raise ValueError("request not complete")
        return self.complete_ns - self.arrival_ns
