"""Row-buffer management policies (§7.3, Appendix D.1).

* :class:`OpenRowPolicy` — the FR-FCFS baseline: a row stays open until a
  conflicting access or a refresh closes it.
* :class:`ClosedRowPolicy` — the "minimally-open-row" policy: the row is
  closed right after each access (t_mro = tRAS), trading row-buffer
  locality for the smallest possible t_AggON.
* :class:`TimeCappedPolicy` — the co-design knob of §7.4: a row may serve
  hits only until it has been open for ``t_mro`` nanoseconds, then it is
  force-closed even if more requests are ready.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.dram_model import BankState


class RowPolicy:
    """Decides whether an open row may serve another hit / stay open."""

    #: Policy name used in reports.
    name = "base"

    def row_still_open(self, bank: BankState, time_ns: float) -> bool:
        """Whether the row opened at ``bank.open_since`` is still open."""
        return bank.open_row is not None

    def forced_close_time(self, bank: BankState) -> float | None:
        """Absolute time the row auto-closes, or None."""
        return None

    def close_after_access(self) -> bool:
        """Whether the controller precharges right after each access."""
        return False


@dataclass
class OpenRowPolicy(RowPolicy):
    """Keep rows open for future hits (Table 7 baseline)."""

    name = "open"


@dataclass
class TimeCappedPolicy(RowPolicy):
    """Force-close any row that has been open for ``t_mro`` ns."""

    t_mro: float = 636.0
    name = "t_mro"

    def row_still_open(self, bank: BankState, time_ns: float) -> bool:
        """Open only while the row has been open for less than t_mro."""
        if bank.open_row is None:
            return False
        return time_ns - bank.open_since < self.t_mro

    def forced_close_time(self, bank: BankState) -> float | None:
        """Absolute time the cap closes the currently open row."""
        if bank.open_row is None:
            return None
        return bank.open_since + self.t_mro


@dataclass
class ClosedRowPolicy(TimeCappedPolicy):
    """Minimally-open-row (§7.3): force-close after tRAS = 36 ns.

    Queued hits arriving within the 36 ns open window are still served;
    everything later pays a fresh activation.
    """

    t_mro: float = 36.0
    name = "closed"


@dataclass
class DecoupledBufferPolicy(RowPolicy):
    """Row-buffer decoupling (§7.2, after [133, 142]).

    The wordline is de-asserted once charge restoration completes (tRAS),
    but the sense amplifiers keep the data: reads still hit the buffer at
    open-row speed.  Writes must re-assert the wordline, paying a
    reconnect penalty.  The aggressor-row on-time is therefore capped at
    tRAS regardless of how many reads the attacker issues — RowPress dose
    collapses to the RowHammer baseline — at (nearly) open-row
    performance.  The paper notes this needs non-trivial DRAM changes and
    does not stop RowHammer itself.
    """

    name = "decoupled"
    write_reconnect_penalty: float = 15.0  # re-assert wordline (~tRCD)

    @property
    def wordline_cap(self) -> float:
        """Effective aggressor on-time per activation (ns)."""
        return 36.0
