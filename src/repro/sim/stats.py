"""Simulation statistics: row-buffer behavior and per-row activations.

Per-row activation counts are tracked inside rolling tREFW windows — the
observable behind Fig. 38 (the minimally-open-row policy turning benign
workloads into RowHammer-like activation patterns) and the §7.4 security
argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimStats:
    """Counters accumulated during one simulation."""

    row_hits: int = 0
    row_misses: int = 0  # accesses to a closed bank
    row_conflicts: int = 0  # accesses that had to close another row
    activations: int = 0
    refresh_commands: int = 0
    preventive_refreshes: int = 0
    per_core_hits: dict[int, int] = field(default_factory=dict)
    per_core_accesses: dict[int, int] = field(default_factory=dict)
    #: Activations per row inside the current tREFW window.
    window_row_acts: dict[tuple[int, int, int], int] = field(default_factory=dict)
    #: Highest in-window activation count each row ever reached.
    max_row_acts: dict[tuple[int, int, int], int] = field(default_factory=dict)

    def record_access(self, core_id: int, kind: str) -> None:
        """Account one serviced request (kind: hit/miss/conflict)."""
        if kind == "hit":
            self.row_hits += 1
            self.per_core_hits[core_id] = self.per_core_hits.get(core_id, 0) + 1
        elif kind == "miss":
            self.row_misses += 1
        else:
            self.row_conflicts += 1
        self.per_core_accesses[core_id] = self.per_core_accesses.get(core_id, 0) + 1

    def record_activation(self, rank: int, bank: int, row: int) -> None:
        """Account one ACT inside the current refresh window."""
        self.activations += 1
        key = (rank, bank, row)
        count = self.window_row_acts.get(key, 0) + 1
        self.window_row_acts[key] = count
        if count > self.max_row_acts.get(key, 0):
            self.max_row_acts[key] = count

    def rotate_window(self) -> None:
        """A tREFW elapsed: in-window counters restart."""
        self.window_row_acts.clear()

    @property
    def accesses(self) -> int:
        """Total serviced requests."""
        return self.row_hits + self.row_misses + self.row_conflicts

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses served from an open row."""
        return self.row_hits / self.accesses if self.accesses else 0.0

    def max_activations_any_row(self) -> int:
        """Highest per-row in-window activation count observed (Fig. 38)."""
        return max(self.max_row_acts.values(), default=0)
