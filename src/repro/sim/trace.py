"""Synthetic workload generation (SPEC / TPC-H / YCSB stand-ins).

The paper's traces are proprietary SPEC CPU2006/2017, TPC-H, and YCSB
memory traces.  We substitute parameterized generators calibrated to the
properties the mitigation study actually depends on:

* **memory intensity** — LLC misses per kilo-instruction (MPKI), which
  sets how memory-bound the core is, and
* **row-buffer locality** — the probability that the next miss falls in
  the currently streamed DRAM row, which sets RBMPKI and decides how much
  a row policy change hurts (App. D.1's 462.libquantum vs. 429.mcf).

Each generated request stream is deterministic given the workload name
and seed.  Paper-named workloads appear with the paper's reported
characteristics (e.g. h264_encode's 87 % row-buffer hit rate, 429.mcf's
RBMPKI of 68.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.rng import stream
from repro.sim.request import Request, RequestType


@dataclass(frozen=True)
class WorkloadSpec:
    """Statistical profile of one workload."""

    name: str
    mpki: float  # LLC misses per kilo-instruction
    row_locality: float  # P(next miss stays in the streamed row)
    working_set_rows: int = 512
    write_fraction: float = 0.1
    category: str = "H"  # "H"igh / "L"ow memory intensity (App. D.2)

    @property
    def rbmpki(self) -> float:
        """Row-buffer misses per kilo-instruction (open-row ideal)."""
        return self.mpki * (1.0 - self.row_locality)

    @property
    def mean_gap_instructions(self) -> float:
        """Average non-memory instructions between misses."""
        return 1000.0 / self.mpki


#: Paper-named workloads with characteristics from §7 / Appendix D.
WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        # SPEC CPU2006
        WorkloadSpec("429.mcf", mpki=62.0, row_locality=0.10, working_set_rows=4096),
        WorkloadSpec("462.libquantum", mpki=25.0, row_locality=0.964, working_set_rows=256),
        WorkloadSpec("433.milc", mpki=22.0, row_locality=0.45, working_set_rows=2048),
        WorkloadSpec("436.cactusADM", mpki=5.0, row_locality=0.93, working_set_rows=512),
        WorkloadSpec("471.omnetpp", mpki=8.0, row_locality=0.30, working_set_rows=2048),
        WorkloadSpec("483.xalancbmk", mpki=1.8, row_locality=0.92, working_set_rows=256),
        WorkloadSpec("450.soplex", mpki=28.0, row_locality=0.55, working_set_rows=2048),
        # SPEC CPU2017
        WorkloadSpec("505.mcf", mpki=40.0, row_locality=0.20, working_set_rows=4096),
        WorkloadSpec("510.parest", mpki=15.0, row_locality=0.94, working_set_rows=512),
        WorkloadSpec("520.omnetpp", mpki=7.0, row_locality=0.35, working_set_rows=2048),
        WorkloadSpec("557.xz", mpki=12.0, row_locality=0.50, working_set_rows=1024),
        WorkloadSpec("549.fotonik3d", mpki=18.0, row_locality=0.88, working_set_rows=1024),
        # Media / database / key-value
        WorkloadSpec("h264_encode", mpki=4.0, row_locality=0.87, working_set_rows=256),
        WorkloadSpec("jp2_decode", mpki=6.0, row_locality=0.90, working_set_rows=256),
        WorkloadSpec("tpch6", mpki=14.0, row_locality=0.75, working_set_rows=2048),
        WorkloadSpec("tpch17", mpki=9.0, row_locality=0.60, working_set_rows=2048),
        WorkloadSpec("ycsb_a", mpki=11.0, row_locality=0.25, working_set_rows=4096),
        WorkloadSpec("ycsb_e", mpki=6.0, row_locality=0.55, working_set_rows=2048),
        # Low-intensity fillers ("L" category)
        WorkloadSpec("namd", mpki=0.4, row_locality=0.70, category="L"),
        WorkloadSpec("povray", mpki=0.15, row_locality=0.60, category="L"),
        WorkloadSpec("perlbench", mpki=0.7, row_locality=0.50, category="L"),
        WorkloadSpec("leela", mpki=0.3, row_locality=0.40, category="L"),
    ]
}
# High/low classification per the paper (App. D.2): a workload is "H"
# when LLC-MPKI >= 1 and RBMPKI >= 1, otherwise "L".
for _spec in WORKLOADS.values():
    expected = "H" if (_spec.mpki >= 1.0 and _spec.rbmpki >= 1.0) else "L"
    object.__setattr__(_spec, "category", expected)


def workload_categories() -> dict[str, list[str]]:
    """Workload names grouped by memory-intensity category."""
    groups: dict[str, list[str]] = {"H": [], "L": []}
    for spec in WORKLOADS.values():
        groups[spec.category].append(spec.name)
    for names in groups.values():
        names.sort()
    return groups


class SyntheticWorkload:
    """Deterministic request-stream generator for one core."""

    def __init__(
        self,
        spec: WorkloadSpec,
        core_id: int,
        ranks: int = 2,
        banks: int = 16,
        columns_per_row: int = 128,
        seed: int = 1,
    ) -> None:
        self.spec = spec
        self.core_id = core_id
        self.ranks = ranks
        self.banks = banks
        self.columns_per_row = columns_per_row
        self._rng = stream(seed, "trace", spec.name, core_id)
        self._row = 0
        self._bank = 0
        self._rank = 0
        self._column = 0
        # Cores partition the row space so their streams do not collide.
        self._row_base = (core_id * 131071) % 16384

    def _next_location(self) -> tuple[int, int, int, int]:
        rng = self._rng
        if rng.random() < self.spec.row_locality:
            self._column = (self._column + 1) % self.columns_per_row
        else:
            self._rank = int(rng.integers(self.ranks))
            self._bank = int(rng.integers(self.banks))
            self._row = self._row_base + int(rng.integers(self.spec.working_set_rows))
            self._column = int(rng.integers(self.columns_per_row))
        return self._rank, self._bank, self._row, self._column

    def requests(self, count: int) -> Iterator[tuple[int, Request]]:
        """Yield (gap_instructions, request) pairs.

        ``gap_instructions`` is the number of non-memory instructions the
        core executes before issuing the request.
        """
        rng = self._rng
        mean_gap = self.spec.mean_gap_instructions
        instruction = 0
        for _ in range(count):
            gap = int(rng.exponential(mean_gap))
            instruction += gap + 1
            rank, bank, row, column = self._next_location()
            kind = (
                RequestType.WRITE
                if rng.random() < self.spec.write_fraction
                else RequestType.READ
            )
            yield gap, Request(
                core_id=self.core_id,
                rank=rank,
                bank=bank,
                row=row,
                column=column,
                kind=kind,
                instruction_index=instruction,
            )
