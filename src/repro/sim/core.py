"""Simplified out-of-order core model (Ramulator style; Table 7).

A core consumes a pregenerated (gap, request) stream.  Non-memory
instructions retire at ``width`` per cycle.  Memory reads occupy an MSHR
and an instruction-window slot: a read can issue only while its distance
from the oldest incomplete read stays inside the 128-entry window and an
MSHR is free.  Writes retire immediately (drained through the write
buffer without stalling the core).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.request import Request, RequestType

#: 4 GHz core clock period in nanoseconds.
CYCLE_NS = 0.25


@dataclass
class CoreModel:
    """One trace-driven core."""

    core_id: int
    stream: list[tuple[int, Request]]
    width: int = 4
    window_instructions: int = 128
    mshrs: int = 8
    _index: int = 0
    _front_end_ready_ns: float = 0.0
    _outstanding: dict[int, int] = field(default_factory=dict)  # id -> instr
    finish_ns: float | None = None
    total_instructions: int = 0

    def __post_init__(self) -> None:
        self.total_instructions = (
            self.stream[-1][1].instruction_index if self.stream else 0
        )

    @property
    def done(self) -> bool:
        """Whether the stream is fully consumed and drained."""
        return self._index >= len(self.stream) and not self._outstanding

    @property
    def outstanding_reads(self) -> int:
        """In-flight reads."""
        return len(self._outstanding)

    def next_issue_constraint(self, now_ns: float) -> tuple[Request | None, float | None]:
        """(request to issue now, or retry time; (None, None) = blocked).

        Blocked means an in-flight read must complete first — the
        simulator re-polls the core on its next completion event.
        """
        if self._index >= len(self.stream):
            return None, None
        gap, request = self.stream[self._index]
        front_end = max(self._front_end_ready_ns, 0.0)
        if now_ns + 1e-9 < front_end:
            return None, front_end
        if self._outstanding:
            oldest = min(self._outstanding.values())
            if request.instruction_index - oldest >= self.window_instructions:
                return None, None  # window full: wait for a completion
            if len(self._outstanding) >= self.mshrs:
                return None, None  # MSHRs exhausted
        return request, None

    def issue(self, request: Request, now_ns: float) -> None:
        """Commit to issuing ``request`` at ``now_ns``."""
        gap, expected = self.stream[self._index]
        assert expected is request
        self._index += 1
        if request.kind is RequestType.READ:
            self._outstanding[id(request)] = request.instruction_index
        # Front-end time to reach the *next* request's issue point.
        if self._index < len(self.stream):
            next_gap = self.stream[self._index][0]
            self._front_end_ready_ns = now_ns + (next_gap / self.width) * CYCLE_NS
        else:
            tail_ns = (gap / self.width) * CYCLE_NS
            self._maybe_finish(now_ns + tail_ns)

    def complete(self, request: Request, time_ns: float) -> None:
        """A read came back from memory."""
        self._outstanding.pop(id(request), None)
        if self._index >= len(self.stream):
            self._maybe_finish(time_ns)

    def _maybe_finish(self, time_ns: float) -> None:
        if self._index >= len(self.stream) and not self._outstanding:
            if self.finish_ns is None or time_ns > self.finish_ns:
                self.finish_ns = time_ns

    def ipc(self) -> float:
        """Retired instructions per core cycle over the whole run."""
        if self.finish_ns is None or self.finish_ns <= 0:
            return 0.0
        cycles = self.finish_ns / CYCLE_NS
        return self.total_instructions / cycles if cycles > 0 else 0.0
