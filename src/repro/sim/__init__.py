"""Ramulator-lite: a command-level DDR4 performance simulator (§7, App. D).

The paper evaluates its mitigation methodology with Ramulator on a 4 GHz
out-of-order system (Table 7).  This package provides the pieces that
study needs:

* :mod:`repro.sim.trace` — synthetic workload generators calibrated to
  the paper's named benchmarks' memory intensity and row-buffer locality,
* :mod:`repro.sim.core` — the standard simplified OoO core model
  (instruction window + MSHR-limited memory-level parallelism),
* :mod:`repro.sim.dram_model` — DDR4 bank/rank state machine with the
  Table 7 timing, including refresh,
* :mod:`repro.sim.rowpolicy` — open / minimally-open / t_mro-capped row
  policies (§7.3),
* :mod:`repro.sim.memctrl` — FR-FCFS scheduling with row-policy and
  read-disturb-mitigation hooks,
* :mod:`repro.sim.simulator` — multi-core assembly, IPC and weighted
  speedup reporting,
* :mod:`repro.sim.stats` — row-activation accounting within refresh
  windows (Fig. 38) and row-buffer statistics.
"""

from repro.sim.request import Request
from repro.sim.trace import WORKLOADS, SyntheticWorkload, WorkloadSpec, workload_categories
from repro.sim.rowpolicy import (
    ClosedRowPolicy,
    DecoupledBufferPolicy,
    OpenRowPolicy,
    RowPolicy,
    TimeCappedPolicy,
)
from repro.sim.tracefile import TraceAddressMap, dump_trace, export_synthetic, load_trace
from repro.sim.core import CoreModel
from repro.sim.memctrl import MemoryController
from repro.sim.simulator import SimulationResult, Simulator, weighted_speedup

__all__ = [
    "Request",
    "WORKLOADS",
    "SyntheticWorkload",
    "WorkloadSpec",
    "workload_categories",
    "RowPolicy",
    "OpenRowPolicy",
    "ClosedRowPolicy",
    "TimeCappedPolicy",
    "DecoupledBufferPolicy",
    "TraceAddressMap",
    "load_trace",
    "dump_trace",
    "export_synthetic",
    "CoreModel",
    "MemoryController",
    "Simulator",
    "SimulationResult",
    "weighted_speedup",
]
