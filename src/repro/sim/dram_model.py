"""DDR4 bank state machine for the performance simulator.

Tracks, per bank: the open row, when it was opened, and the earliest time
the next command can issue.  The paper's Table 7 system (DDR4-3200, one
channel, two ranks, 16 banks) is the default; timing comes from
:class:`repro.dram.timing.TimingParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import DDR4_3200W, TimingParameters


@dataclass
class BankState:
    """One DRAM bank as the memory controller sees it."""

    open_row: int | None = None
    open_since: float = 0.0
    last_act: float = -1e18
    ready: float = 0.0  # earliest time the next command may issue

    def close(self, time_ns: float, timing: TimingParameters) -> float:
        """Precharge the bank; returns when the bank can ACT again."""
        if self.open_row is None:
            return max(self.ready, time_ns)
        pre_time = max(time_ns, self.last_act + timing.tRAS, self.ready)
        self.open_row = None
        self.ready = pre_time + timing.tRP
        return self.ready

    def advance_loop(self, iterations: int, period_ns: float) -> None:
        """Closed-form update for steady ACT→PRE loop iterations.

        Once a command loop reaches steady state every iteration shifts
        the bank's clocks by exactly one period, so ``iterations`` more
        iterations collapse into one O(1) translation — the
        memory-controller analog of the executor's bulk-deposit path
        (:mod:`repro.bender.executor`).
        """
        if iterations <= 0:
            return
        shift = iterations * period_ns
        self.last_act += shift
        self.ready += shift
        if self.open_row is not None:
            self.open_since += shift


@dataclass
class DramState:
    """All banks of the simulated channel."""

    ranks: int = 2
    banks_per_rank: int = 16
    timing: TimingParameters = DDR4_3200W
    banks: dict[tuple[int, int], BankState] = field(default_factory=dict)
    #: Recent ACT times per rank (tFAW / tRRD enforcement).
    _recent_acts: dict[int, list[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for rank in range(self.ranks):
            for bank in range(self.banks_per_rank):
                self.banks[(rank, bank)] = BankState()
            self._recent_acts[rank] = []

    def bank(self, rank: int, bank: int) -> BankState:
        """Bank state accessor."""
        return self.banks[(rank, bank)]

    def earliest_act(self, rank: int, desired_ns: float) -> float:
        """Earliest legal ACT time on a rank (tRRD and four-ACT window)."""
        recent = self._recent_acts[rank]
        time_ns = desired_ns
        if recent:
            time_ns = max(time_ns, recent[-1] + self.timing.tRRD)
            if len(recent) >= 4:
                time_ns = max(time_ns, recent[-4] + self.timing.tFAW)
        return time_ns

    def record_act(self, rank: int, time_ns: float) -> None:
        """Register an issued ACT for the rank-level windows."""
        recent = self._recent_acts[rank]
        recent.append(time_ns)
        if len(recent) > 4:
            del recent[0]

    def refresh_rank(self, rank: int, time_ns: float) -> None:
        """REF: close all rows of a rank and block it for tRFC."""
        for (r, _b), state in self.banks.items():
            if r != rank:
                continue
            if state.open_row is not None:
                state.close(time_ns, self.timing)
            state.ready = max(state.ready, time_ns) + self.timing.tRFC

    def service_cost(self, hit: bool) -> float:
        """Data latency of a scheduled access (CAS, plus ACT on a miss)."""
        timing = self.timing
        if hit:
            return timing.tCL + timing.tBL
        return timing.tRCD + timing.tCL + timing.tBL
