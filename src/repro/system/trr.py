"""In-DRAM target-row-refresh (TRR) model.

Vendor TRR implementations track a small number of candidate aggressor
rows and piggyback victim refreshes on REF commands (U-TRR [43],
TRRespass [32]).  The demo DIMM's behavior is modeled as a
*proximity-to-REF sampler*: the last few distinct rows activated before a
REF are treated as aggressors and their neighbors refreshed.  This is the
mechanism the paper's dummy-row access pattern bypasses — dummy rows are
activated right before the refresh boundary, so the sampler only ever
sees dummies and the true aggressors stay hidden.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.dram.geometry import RowAddress


@dataclass
class TrrSampler:
    """Tracks the most recent distinct activations per bank."""

    table_size: int = 2
    neighborhood: int = 2  # victims refreshed on each side of a target
    sampled_activations: int = 0
    preventive_refreshes: int = 0
    _tables: dict[tuple[int, int], deque] = field(default_factory=dict, repr=False)

    def _table(self, rank: int, bank: int) -> deque:
        key = (rank, bank)
        if key not in self._tables:
            self._tables[key] = deque(maxlen=self.table_size)
        return self._tables[key]

    def observe(self, address: RowAddress, time_ns: float) -> None:
        """Record one activation (hooked to the device's ACT path)."""
        table = self._table(address.rank, address.bank)
        if address.row in table:
            table.remove(address.row)
        table.append(address.row)
        self.sampled_activations += 1

    def observe_bulk(self, address: RowAddress, count: int) -> None:
        """Record ``count`` back-to-back activations of one row."""
        if count > 0:
            self.observe(address, 0.0)
            self.sampled_activations += count - 1

    def targets_for_refresh(self, rank: int, bank: int) -> list[RowAddress]:
        """Victim rows to refresh on the next REF of a bank (and reset)."""
        table = self._table(rank, bank)
        victims: list[RowAddress] = []
        for row in table:
            for distance in range(1, self.neighborhood + 1):
                for victim_row in (row - distance, row + distance):
                    if victim_row >= 0:
                        victims.append(RowAddress(rank, bank, victim_row))
        table.clear()
        self.preventive_refreshes += len(victims)
        return victims
