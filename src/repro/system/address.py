"""Physical-address to DRAM-address mapping (DRAMA style).

Intel memory controllers compute the DRAM bank from XOR combinations of
physical address bits; the row is taken from the high bits and the column
from the low ones.  The paper reverse-engineers this mapping with DRAMA
[112] and then allocates a 1 GB hugepage so the low 30 physical bits are
attacker-controlled (§6.1).  :class:`AddressMapping` implements a
representative dual-rank mapping and its inverse; :class:`Hugepage` models
the 1 GB allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


@dataclass(frozen=True)
class AddressMapping:
    """XOR-function DRAM mapping for a one-channel system.

    Layout (low to high): 6 bits cache-line offset, ``column_bits`` bits of
    cache-block column, bank/rank XOR functions, then the row.  Defaults
    model 128 cache blocks per 8 KiB row, 16 banks, 2 ranks — the paper's
    demo DIMM.
    """

    column_bits: int = 7  # 128 cache blocks per row
    bank_bits: int = 4
    rank_bits: int = 1
    row_bits: int = 17
    #: XOR masks over the physical address, one per bank bit (DRAMA-style).
    bank_masks: tuple[int, ...] = (
        0x0_2040,
        0x0_4080,
        0x0_8100,
        0x1_0200,
    )
    rank_mask: int = 0x2_0400

    @property
    def block_offset_bits(self) -> int:
        """Bits addressing bytes inside one cache line."""
        return 6

    @property
    def row_shift(self) -> int:
        """Physical bit where the row field starts."""
        return self.block_offset_bits + self.column_bits + self.bank_bits + self.rank_bits

    def dram_address(self, physical: int) -> tuple[int, int, int, int]:
        """(rank, bank, row, column-block) of a physical address."""
        column = (physical >> self.block_offset_bits) & ((1 << self.column_bits) - 1)
        bank = 0
        for bit, mask in enumerate(self.bank_masks):
            bank |= _parity(physical & mask) << bit
        rank = _parity(physical & self.rank_mask)
        row = (physical >> self.row_shift) & ((1 << self.row_bits) - 1)
        return rank, bank, row, column

    def physical_address(self, rank: int, bank: int, row: int, column: int) -> int:
        """A physical address mapping to the given DRAM coordinates.

        The XOR functions are chosen so that each bank mask has exactly one
        bit inside the bank/rank field region; that bit is solved directly
        and the remaining mask bits come from the row/column fields.
        """
        base_shift = self.block_offset_bits + self.column_bits
        physical = (row << self.row_shift) | (column << self.block_offset_bits)
        for bit, mask in enumerate(self.bank_masks):
            local_bit = 1 << (base_shift + bit)
            if mask & local_bit == 0:
                raise ValueError("bank mask lacks a solvable local bit")
            desired = (bank >> bit) & 1
            if _parity(physical & (mask & ~local_bit)) != desired:
                physical |= local_bit
        rank_bit = 1 << (base_shift + self.bank_bits)
        if self.rank_mask & rank_bit == 0:
            raise ValueError("rank mask lacks a solvable local bit")
        if _parity(physical & (self.rank_mask & ~rank_bit)) != (rank & 1):
            physical |= rank_bit
        return physical


@dataclass
class Hugepage:
    """A 1 GB hugepage: attacker-visible contiguous physical memory."""

    mapping: AddressMapping = field(default_factory=AddressMapping)
    base_physical: int = 0x4000_0000  # 1 GB aligned
    size: int = 1 << 30

    def physical(self, offset: int) -> int:
        """Physical address of a byte offset inside the hugepage."""
        if not 0 <= offset < self.size:
            raise ValueError("offset outside the hugepage")
        return self.base_physical + offset

    def pointer_to(self, rank: int, bank: int, row: int, column: int = 0) -> int:
        """Hugepage offset of a DRAM location (aggressor-row pointers).

        The hugepage base is 1 GB aligned and the XOR masks only cover
        low physical bits, so the mapping of an in-page offset equals the
        mapping of its physical address (modulo a constant row offset that
        cancels for row-adjacency purposes).
        """
        offset = self.mapping.physical_address(rank, bank, row, column)
        if not 0 <= offset < self.size:
            raise ValueError("DRAM location not covered by the hugepage")
        return offset
