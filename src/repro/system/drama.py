"""DRAMA-style address-mapping reverse engineering (§6.1).

The paper recovers the processor's physical-to-DRAM mapping with DRAMA
[Pessl+, USENIX Sec'16]: pairs of addresses in the *same bank but
different rows* show a measurably higher access latency (row conflict)
than pairs in different banks.  From the set of same-bank address pairs,
the XOR bank functions are solved by checking which bit-masks are
constant-parity within each bank set.

This module runs the same attack against :class:`repro.system.machine.
RealSystem`'s timing side channel — no knowledge of the configured
:class:`repro.system.address.AddressMapping` is used beyond its size
constants (which an attacker also knows from the DIMM's datasheet).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.system.machine import RealSystem


def measure_pair_latency(system: RealSystem, offset_a: int, offset_b: int,
                         rounds: int = 6) -> float:
    """Median alternating-access latency of two hugepage offsets (cycles).

    Both blocks are flushed each round, so each access reaches DRAM; a
    same-bank different-row pair forces a row conflict every time.
    """
    samples = []
    for _ in range(rounds):
        system.clflushopt(offset_a)
        system.clflushopt(offset_b)
        system.mfence()
        samples.append(system.read(offset_a))
        samples.append(system.read(offset_b))
    return float(np.median(samples))


def find_conflict_threshold(system: RealSystem, probe_offsets: list[int]) -> float:
    """Latency threshold separating row conflicts from other accesses.

    Measures every pair among the probes (some land in the same bank,
    some do not) and splits the resulting bimodal latency distribution at
    its largest gap.
    """
    latencies = sorted(
        measure_pair_latency(system, a, b)
        for a, b in itertools.combinations(probe_offsets, 2)
    )
    if len(latencies) < 2:
        return float(latencies[0]) + 1.0 if latencies else 0.0
    gaps = [(b - a, (a + b) / 2) for a, b in zip(latencies, latencies[1:])]
    return max(gaps)[1]


def same_bank_sets(
    system: RealSystem,
    sample_offsets: list[int],
    threshold: float | None = None,
) -> list[list[int]]:
    """Group hugepage offsets into same-bank sets via the side channel."""
    if threshold is None:
        threshold = find_conflict_threshold(system, sample_offsets[:8])
    sets: list[list[int]] = []
    for offset in sample_offsets:
        placed = False
        for group in sets:
            if measure_pair_latency(system, group[0], offset) >= threshold:
                group.append(offset)
                placed = True
                break
        if not placed:
            sets.append([offset])
    return sets


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


def recover_bank_masks(
    sets: list[list[int]],
    candidate_bits: range = range(6, 22),
    max_mask_bits: int = 2,
) -> list[int]:
    """XOR masks whose parity is constant within every same-bank set.

    Returns the irreducible (lowest-bit-count) masks, excluding masks
    that are constant across *all* addresses (uninformative).
    """
    candidates = []
    for size in range(1, max_mask_bits + 1):
        for bits in itertools.combinations(candidate_bits, size):
            candidates.append(sum(1 << b for b in bits))
    valid = []
    all_offsets = [offset for group in sets for offset in group]
    for mask in candidates:
        constant_within = all(
            len({_parity(offset & mask) for offset in group}) == 1
            for group in sets
            if len(group) >= 2
        )
        varies_overall = len({_parity(offset & mask) for offset in all_offsets}) > 1
        if constant_within and varies_overall:
            valid.append(mask)
    # Drop masks implied by XOR-combinations of smaller valid masks.
    irreducible: list[int] = []
    for mask in sorted(valid, key=lambda m: (bin(m).count("1"), m)):
        if not any(mask == a ^ b for a in irreducible for b in irreducible):
            irreducible.append(mask)
    return irreducible
