"""Real-system memory controller: open-row policy + auto-refresh + TRR.

Models the architectural behavior the demonstration depends on (§6.2/6.3):

* an **open-row policy** — after serving a request the row stays open, so
  back-to-back accesses to different cache blocks of the same row are row
  hits and keep the row open (this is exactly what gives the attacker a
  large t_AggON),
* **auto-refresh** — REF every tREFI; all open rows are closed first; a
  fractional per-bank pointer sweeps every row once per tREFW,
* **in-DRAM TRR** — the device's activation stream feeds the sampler and
  victim refreshes piggyback on REF.

Latencies are drawn from a small noise model so the Fig. 24 histogram has
realistic spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dram.device import Bitflip
from repro.dram.geometry import RowAddress
from repro.dram.module import DramModule
from repro.rng import stream
from repro.system.address import AddressMapping
from repro.system.trr import TrrSampler


@dataclass(frozen=True)
class LatencyModel:
    """Cache-miss-to-DRAM latencies in nanoseconds (before CPU overhead)."""

    row_hit: float = 67.5  # open-row CAS
    row_closed: float = 72.0  # ACT + CAS
    row_conflict: float = 75.0  # PRE + ACT + CAS (~30 TSC cycles over a hit)
    noise_sigma: float = 1.5


@dataclass
class _OpenRow:
    row: int
    since_ns: float


class RealSystemMemoryController:
    """One-channel memory controller in front of a :class:`DramModule`."""

    def __init__(
        self,
        module: DramModule,
        mapping: AddressMapping | None = None,
        trr: TrrSampler | None = None,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | None = None,
        refresh_enabled: bool = True,
        max_postponed_refreshes: int = 0,
    ) -> None:
        """``max_postponed_refreshes`` models JEDEC refresh postponement:
        while a row is open and serving requests, up to this many REF
        commands may be deferred (8 allowed by DDR4 §4.26), which is what
        lets an attacker-controlled row stay open for up to 9 x tREFI =
        70.2 us instead of one tREFI (§2.3, footnote 7)."""
        self.module = module
        self.mapping = mapping or AddressMapping()
        self.trr = trr
        self.latency = latency or LatencyModel()
        self.rng = rng or stream(7, "system", "controller")
        self.refresh_enabled = refresh_enabled
        self.max_postponed_refreshes = max_postponed_refreshes
        self._postponed = 0
        self._last_access_ns = 0.0
        self._open: dict[tuple[int, int], _OpenRow] = {}
        self._refresh_accum: dict[tuple[int, int], float] = {}
        self._refresh_pointer: dict[tuple[int, int], int] = {}
        self.next_refresh_ns = module.device.timing.tREFI
        self.refresh_bitflips: list[Bitflip] = []
        self.stats = {"hits": 0, "closed": 0, "conflicts": 0, "refreshes": 0}
        if trr is not None:
            module.device.on_activate = trr.observe

    # ------------------------------------------------------------------

    def _catch_up_refresh(self, now_ns: float) -> None:
        timing = self.module.device.timing
        while self.refresh_enabled and self.next_refresh_ns <= now_ns:
            # JEDEC postponement: with a row actively serving requests
            # (accessed within the last tREFI), the controller may defer
            # up to max_postponed_refreshes REF commands.
            busy = (
                self._open
                and now_ns - self._last_access_ns < timing.tREFI
                and self._postponed < self.max_postponed_refreshes
            )
            if busy:
                self._postponed += 1
                self.next_refresh_ns += timing.tREFI
                continue
            catch_up = 1 + self._postponed
            for _ in range(catch_up):
                self._refresh_all(self.next_refresh_ns)
            self._postponed = 0
            self.next_refresh_ns += timing.tREFI

    def _refresh_all(self, time_ns: float) -> None:
        device = self.module.device
        geometry = self.module.geometry
        # Close every open row (REF requires precharged banks).
        for (rank, bank), state in list(self._open.items()):
            device.precharge(rank, bank, time_ns)
        self._open.clear()
        refs_per_window = device.timing.tREFW / device.timing.tREFI
        rows_per_ref = geometry.rows_per_bank / refs_per_window
        for rank in range(geometry.ranks):
            for bank in range(geometry.banks):
                key = (rank, bank)
                accum = self._refresh_accum.get(key, 0.0) + rows_per_ref
                pointer = self._refresh_pointer.get(key, 0)
                while accum >= 1.0:
                    address = RowAddress(rank, bank, pointer)
                    self.refresh_bitflips.extend(device.refresh_row(address, time_ns))
                    pointer = (pointer + 1) % geometry.rows_per_bank
                    accum -= 1.0
                self._refresh_accum[key] = accum
                self._refresh_pointer[key] = pointer
                if self.trr is not None:
                    for victim in self.trr.targets_for_refresh(rank, bank):
                        if geometry.valid_row(victim):
                            self.refresh_bitflips.extend(
                                device.refresh_row(victim, time_ns)
                            )
        self.stats["refreshes"] += 1

    # ------------------------------------------------------------------

    def access(self, physical: int, now_ns: float) -> tuple[float, str]:
        """Serve one memory read; returns (latency_ns, access kind)."""
        self._catch_up_refresh(now_ns)
        rank, bank, row, _column = self.mapping.dram_address(physical)
        row %= self.module.geometry.rows_per_bank
        return self.access_row(rank, bank, row, now_ns)

    def access_row(self, rank: int, bank: int, row: int, now_ns: float) -> tuple[float, str]:
        """Serve a read addressed directly by DRAM coordinates."""
        self._last_access_ns = now_ns
        self._catch_up_refresh(now_ns)
        device = self.module.device
        key = (rank, bank)
        state = self._open.get(key)
        address = RowAddress(rank, bank, row)
        noise = abs(float(self.rng.normal(0.0, self.latency.noise_sigma)))
        if state is not None and state.row == row:
            self.stats["hits"] += 1
            return self.latency.row_hit + noise, "hit"
        if state is None:
            device.act(address, now_ns)
            self._open[key] = _OpenRow(row=row, since_ns=now_ns)
            self.stats["closed"] += 1
            return self.latency.row_closed + noise, "closed"
        device.precharge(rank, bank, now_ns)
        act_time = now_ns + device.timing.tRP
        device.act(address, act_time)
        self._open[key] = _OpenRow(row=row, since_ns=act_time)
        self.stats["conflicts"] += 1
        return self.latency.row_conflict + noise, "conflict"

    def close_all(self, now_ns: float) -> None:
        """Precharge every open row (test/bench convenience)."""
        for (rank, bank) in list(self._open):
            self.module.device.precharge(rank, bank, now_ns)
        self._open.clear()

    def open_row_of(self, rank: int, bank: int) -> int | None:
        """Currently open row of a bank, if any."""
        state = self._open.get((rank, bank))
        return state.row if state else None
