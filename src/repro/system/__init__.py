"""Real-system demonstration substrate (§6 of the paper).

Models the paper's attack platform — an Intel Comet Lake system with a
TRR-protected Samsung DDR4 DIMM — at the architectural level:

* :mod:`repro.system.address` — physical-address -> DRAM mapping (DRAMA
  style XOR bank functions) and 1 GB hugepage allocation,
* :mod:`repro.system.cache` — cache hierarchy with clflushopt / mfence /
  prefetcher semantics,
* :mod:`repro.system.trr` — in-DRAM target-row-refresh sampler,
* :mod:`repro.system.controller` — memory controller with an open-row
  policy and auto-refresh,
* :mod:`repro.system.machine` — the assembled system,
* :mod:`repro.system.demo` — the paper's Algorithm 1 test program and the
  Fig. 24 row-open-time verification program.
"""

from repro.system.address import AddressMapping, Hugepage
from repro.system.cache import CacheModel
from repro.system.trr import TrrSampler
from repro.system.controller import RealSystemMemoryController
from repro.system.machine import RealSystem, build_demo_system
from repro.system.demo import (
    AttackParameters,
    AttackResult,
    measure_access_latencies,
    run_rowpress_attack,
)

__all__ = [
    "AddressMapping",
    "Hugepage",
    "CacheModel",
    "TrrSampler",
    "RealSystemMemoryController",
    "RealSystem",
    "build_demo_system",
    "AttackParameters",
    "AttackResult",
    "run_rowpress_attack",
    "measure_access_latencies",
]
