"""The paper's user-level demonstration programs (§6).

Two entry points:

* :func:`run_rowpress_attack` — Algorithm 1: double-sided aggressor
  activations with ``NUM_READS`` cache-block reads per activation (to keep
  the row open longer), clflushopt + mfence, and 16 dummy rows activated
  right before the refresh boundary to slip past TRR.  Executed in a
  fast-forward mode: the steady per-iteration DRAM schedule is derived
  once from the memory-controller model and deposited in bulk per
  refresh window, which is exact for a synchronized pattern.
* :func:`measure_access_latencies` — the §6.3 verification program: after
  flushing a row's cache blocks, the first access (row activation) is
  measurably slower than the remaining 127 (row hits), proving the
  controller keeps the row open (Fig. 24).

Synchronization quality: a pattern whose iteration approaches (or
exceeds) the tREFI window loses refresh synchronization, letting TRR lock
onto the true aggressors.  This reproduces Obsv. 21's rise-then-fall of
bitflips with ``NUM_READS``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.dram.datapattern import fill_bytes
from repro.dram.device import Bitflip
from repro.dram.geometry import RowAddress
from repro.obs import NULL_OBSERVER, Observer
from repro.rng import stream
from repro.system.machine import RealSystem


@dataclass(frozen=True)
class AttackParameters:
    """Algorithm 1's red-marked inputs plus platform constants."""

    num_reads: int = 16
    num_aggr_acts: int = 4
    num_iterations: int = 800_000
    dummy_rows: int = 16
    dummy_acts_per_row: int = 4
    #: DRAM-side spacing between row-hit reads of one aggressor (ns).
    #: Chosen so that (like on the paper's platform) NUM_READS = 48 with
    #: four activations per aggressor no longer fits one tREFI window.
    read_spacing_ns: float = 12.5
    #: clflushopt/mfence overhead per iteration (ns).
    flush_overhead_ns: float = 40.0

    def __post_init__(self) -> None:
        if self.num_reads < 1 or self.num_aggr_acts < 1:
            raise ValueError("num_reads and num_aggr_acts must be >= 1")


@dataclass
class IterationSchedule:
    """Steady-state DRAM behavior of one attack iteration.

    Each aggressor is activated ``num_aggr_acts`` times per iteration:
    all but the last activation are followed by the short alternation gap
    (the other aggressor's on-time), while the last one is followed by a
    long gap (dummy phase + refresh-sync slack until the next iteration).
    """

    t_on: float  # aggressor row-open time per activation
    short_gap: float  # off time between in-iteration activations
    long_gap: float  # off time across the iteration boundary
    iteration_ns: float  # raw iteration duration
    synced_period_ns: float  # rounded up to a tREFI multiple
    crowding: float  # iteration_ns / tREFI
    iterations_per_window: int
    acts_per_window: int  # per aggressor

    @property
    def fits_trefi(self) -> bool:
        """Whether one iteration fits a single refresh interval."""
        return self.crowding <= 1.0


def plan_iteration(system: RealSystem, params: AttackParameters) -> IterationSchedule:
    """Derive the per-iteration DRAM schedule from the MC model."""
    timing = system.module.device.timing
    t_on = max(timing.tRCD + params.num_reads * params.read_spacing_ns, timing.tRAS)
    short_gap = timing.tRP + t_on  # alternation with the other aggressor
    aggressor_phase = 2 * params.num_aggr_acts * (t_on + timing.tRP)
    dummy_phase = params.dummy_rows * params.dummy_acts_per_row * timing.tRC
    iteration = aggressor_phase + params.flush_overhead_ns + dummy_phase
    crowding = iteration / timing.tREFI
    synced = max(math.ceil(crowding), 1) * timing.tREFI
    iterations_per_window = max(int(timing.tREFW // synced), 1)
    long_gap = synced - aggressor_phase + timing.tRP
    return IterationSchedule(
        t_on=t_on,
        short_gap=short_gap,
        long_gap=max(long_gap, short_gap),
        iteration_ns=iteration,
        synced_period_ns=synced,
        crowding=crowding,
        iterations_per_window=iterations_per_window,
        acts_per_window=iterations_per_window * params.num_aggr_acts,
    )


def sync_clean_probability(crowding: float) -> float:
    """Probability a refresh window stays TRR-synchronized.

    Crowded iterations (close to or above tREFI) lose synchronization with
    the refresh commands; TRR then samples the true aggressors and keeps
    the victims refreshed for that window (Obsv. 21's falloff).
    """
    return 1.0 / (1.0 + math.exp((crowding - 0.85) / 0.04))


@dataclass
class AttackResult:
    """Fig. 23's observables."""

    params: AttackParameters
    schedule: IterationSchedule
    bitflips: list[Bitflip] = field(default_factory=list)
    flips_per_victim: dict[int, int] = field(default_factory=dict)
    windows_simulated: int = 0
    windows_clean: int = 0

    @property
    def total_bitflips(self) -> int:
        """Total bitflips across all victims."""
        return len(self.bitflips)

    @property
    def rows_with_bitflips(self) -> int:
        """Number of victim rows with at least one bitflip."""
        return sum(1 for count in self.flips_per_victim.values() if count > 0)


def run_rowpress_attack(
    system: RealSystem,
    victims: list[RowAddress],
    params: AttackParameters,
    max_windows: int = 3,
    seed: int = 5,
    observer: Observer | None = None,
) -> AttackResult:
    """Execute Algorithm 1 against ``victims`` (fast-forward windows)."""
    obs = observer or NULL_OBSERVER
    with obs.span(
        "attack.run",
        num_reads=params.num_reads,
        num_aggr_acts=params.num_aggr_acts,
        victims=len(victims),
    ) as attack_span:
        result = _run_rowpress_attack(system, victims, params, max_windows, seed)
        attack_span.set(
            bitflips=result.total_bitflips,
            rows_with_bitflips=result.rows_with_bitflips,
            windows=result.windows_simulated,
        )
    obs.metrics.counter("attack.runs").inc()
    obs.metrics.counter("attack.windows").inc(result.windows_simulated)
    obs.metrics.counter("attack.windows_clean").inc(result.windows_clean)
    obs.metrics.counter("attack.bitflips").inc(result.total_bitflips)
    return result


def _run_rowpress_attack(
    system: RealSystem,
    victims: list[RowAddress],
    params: AttackParameters,
    max_windows: int = 3,
    seed: int = 5,
) -> AttackResult:
    device = system.module.device
    timing = device.timing
    schedule = plan_iteration(system, params)
    rng = stream(seed, "system", "attack")
    clean_p = sync_clean_probability(schedule.crowding)
    total_windows = max(
        math.ceil(params.num_iterations / schedule.iterations_per_window), 1
    )
    windows = min(total_windows, max_windows)
    result = AttackResult(params=params, schedule=schedule)
    row_bytes = system.module.geometry.row_bits // 8
    victim_fill = fill_bytes(0x55, system.module.geometry.row_bits)
    aggressor_fill = fill_bytes(0xAA, system.module.geometry.row_bits)

    clock = system.now_ns
    for victim in victims:
        aggr_low = victim.neighbor(-1)
        aggr_high = victim.neighbor(+1)
        device.write_row(victim, victim_fill, clock)
        device.write_row(aggr_low, aggressor_fill, clock)
        device.write_row(aggr_high, aggressor_fill, clock)
        victim_flips = 0
        for _ in range(windows):
            result.windows_simulated += 1
            window_end = clock + timing.tREFW
            if rng.random() < clean_p:
                result.windows_clean += 1
                iters = schedule.iterations_per_window
                acts = params.num_aggr_acts
                # One literal episode each to establish the sandwich, then
                # the rest of the window in bulk: per iteration each
                # aggressor has (acts - 1) short-gap episodes and one
                # long-gap episode across the iteration boundary.
                for aggressor in (aggr_low, aggr_high):
                    device.deposit_episodes(
                        aggressor, schedule.t_on, schedule.short_gap, clock + 1000.0, 1
                    )
                for aggressor in (aggr_low, aggr_high):
                    short_count = iters * (acts - 1)
                    if short_count:
                        device.deposit_episodes(
                            aggressor,
                            schedule.t_on,
                            schedule.short_gap,
                            window_end - 2000.0,
                            short_count,
                        )
                    device.deposit_episodes(
                        aggressor,
                        schedule.t_on,
                        schedule.long_gap,
                        window_end - 1000.0,
                        max(iters - 1, 0),
                    )
                if system.trr is not None:
                    # TRR samples only the dummy rows of a synced window.
                    system.trr.sampled_activations += (
                        schedule.iterations_per_window
                        * params.dummy_rows
                        * params.dummy_acts_per_row
                    )
                    refs = int(timing.tREFW // timing.tREFI)
                    system.trr.preventive_refreshes += refs * 2 * 2
            else:
                # Synchronization lost: TRR locks onto the aggressors and
                # keeps the victims refreshed; the window yields no dose.
                device.reset_disturbance()
            # The victim's own periodic refresh: sense + restore.
            _, flips = device.read_row(victim, window_end)
            press_hammer = [f for f in flips if f.mechanism in ("press", "hammer")]
            victim_flips += len(press_hammer)
            result.bitflips.extend(press_hammer)
            clock = window_end
        result.flips_per_victim[victim.row] = victim_flips
        device.reset_disturbance()
    system.now_ns = clock
    system.controller.next_refresh_ns = clock + timing.tREFI
    return result


def measure_access_latencies(
    system: RealSystem,
    rank: int = 0,
    bank: int = 0,
    row: int = 100,
    conflict_row: int = 900,
    trials: int = 2000,
) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 24: latency of the first vs. remaining cache-block accesses.

    Returns (first-access cycles, remaining-access cycles) arrays.
    """
    system.disable_prefetchers()
    blocks = system.module.geometry.cache_blocks_per_row
    mapped_blocks = min(blocks, 2 ** system.mapping.column_bits)
    row_pointers = [system.row_pointer(rank, bank, row, b) for b in range(mapped_blocks)]
    conflict_pointer = system.row_pointer(rank, bank, conflict_row, 0)
    first: list[int] = []
    rest: list[int] = []
    for _ in range(trials):
        for pointer in row_pointers:
            system.clflushopt(pointer)
        system.clflushopt(conflict_pointer)
        system.mfence()
        # Accessing another row in the same bank closes the tested row.
        system.read(conflict_pointer)
        latencies = [system.read(pointer) for pointer in row_pointers]
        first.append(latencies[0])
        rest.extend(latencies[1:])
    return np.asarray(first), np.asarray(rest)
