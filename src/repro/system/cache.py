"""Processor cache model with flush/fence/prefetch semantics.

Only the behaviors the demonstration depends on are modeled (§6.2/§6.3):

* a load hits if its cache block is resident; hits never reach DRAM,
* ``clflushopt`` evicts a block so the next load goes to memory,
* the next-line prefetcher pulls block+1 on a miss (it must be disabled
  for the Fig. 24 latency measurement, like the paper's MSR pokes),
* ``mfence`` orders flushes before subsequent loads (modeled as a
  serialization point; the machine keeps a small store/flush queue).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheModel:
    """Set of resident 64-byte blocks with LRU capacity management."""

    capacity_blocks: int = 16384  # ~1 MiB of L2/LLC for the touched region
    prefetcher_enabled: bool = True
    _resident: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _pending_flushes: set = field(default_factory=set, repr=False)
    hits: int = 0
    misses: int = 0

    @staticmethod
    def block_of(physical: int) -> int:
        """Block-aligned address of a physical byte address."""
        return physical >> 6

    def lookup(self, physical: int) -> bool:
        """True on hit.  On miss the block (and possibly block+1) fills."""
        block = self.block_of(physical)
        if block in self._resident:
            self._resident.move_to_end(block)
            self.hits += 1
            return True
        self.misses += 1
        self._fill(block)
        if self.prefetcher_enabled:
            self._fill(block + 1)
        return False

    def _fill(self, block: int) -> None:
        self._resident[block] = True
        if len(self._resident) > self.capacity_blocks:
            self._resident.popitem(last=False)

    def clflushopt(self, physical: int) -> None:
        """Queue a block flush (weakly ordered, like the instruction)."""
        self._pending_flushes.add(self.block_of(physical))

    def mfence(self) -> None:
        """Drain pending flushes: blocks actually leave the cache here."""
        for block in self._pending_flushes:
            self._resident.pop(block, None)
        self._pending_flushes.clear()

    def flush_region(self, physical: int, blocks: int) -> None:
        """Flush + fence a contiguous block range (test convenience)."""
        base = self.block_of(physical)
        for index in range(blocks):
            self._pending_flushes.add(base + index)
        self.mfence()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters."""
        self.hits = 0
        self.misses = 0
