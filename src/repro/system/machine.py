"""The assembled demonstration system.

Couples the cache model, the address mapping / hugepage, the memory
controller (with TRR), and a cycle clock into the machine the user-level
attack program of §6 runs on.  The paper's platform — an Intel i5-10400
with a 16 GB dual-rank Samsung DIMM using 8Gb C-dies — maps to the
``S2`` catalog module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.catalog import build_module
from repro.dram.geometry import Geometry
from repro.dram.module import DramModule
from repro.system.address import AddressMapping, Hugepage
from repro.system.cache import CacheModel
from repro.rng import stream
from repro.system.controller import RealSystemMemoryController
from repro.system.trr import TrrSampler


@dataclass
class CpuModel:
    """Minimal CPU-side constants."""

    frequency_ghz: float = 4.0
    #: Fixed core-side latency (cache lookup, LFB, ring) added per miss, ns.
    core_overhead_ns: float = 12.0
    #: Latency of a load that hits in the cache hierarchy, ns.
    cache_hit_ns: float = 10.0

    def cycles(self, latency_ns: float) -> int:
        """Convert a latency to time-stamp-counter cycles."""
        return int(round(latency_ns * self.frequency_ghz))


class RealSystem:
    """CPU + caches + memory controller + TRR-protected DIMM."""

    def __init__(
        self,
        module: DramModule,
        mapping: AddressMapping | None = None,
        trr: TrrSampler | None | str = "auto",
        cpu: CpuModel | None = None,
        seed: int = 11,
    ) -> None:
        self.module = module
        self.mapping = mapping or AddressMapping()
        self.trr = TrrSampler() if trr == "auto" else trr
        self.cpu = cpu or CpuModel()
        self.cache = CacheModel()
        self.hugepage = Hugepage(mapping=self.mapping)
        self.controller = RealSystemMemoryController(
            module,
            mapping=self.mapping,
            trr=self.trr,
            rng=stream(seed, "system", "machine"),
        )
        self.now_ns = 0.0

    # ------------------------------------------------------------------
    # user-level instruction surface
    # ------------------------------------------------------------------

    def read(self, hugepage_offset: int) -> int:
        """One dependent load; returns its latency in TSC cycles."""
        physical = self.hugepage.physical(hugepage_offset)
        if self.cache.lookup(physical):
            latency = self.cpu.cache_hit_ns
        else:
            memory_latency, _kind = self.controller.access(
                physical - self.hugepage.base_physical, self.now_ns
            )
            latency = self.cpu.core_overhead_ns + memory_latency
        self.now_ns += latency
        return self.cpu.cycles(latency)

    def clflushopt(self, hugepage_offset: int) -> None:
        """Flush one cache block (takes effect at the next mfence)."""
        self.cache.clflushopt(self.hugepage.physical(hugepage_offset))
        self.now_ns += 1.0

    def mfence(self) -> None:
        """Serialize: drain flushes before subsequent loads."""
        self.cache.mfence()
        self.now_ns += 8.0

    def disable_prefetchers(self) -> None:
        """The paper's MSR pokes before the Fig. 24 measurement."""
        self.cache.prefetcher_enabled = False

    # ------------------------------------------------------------------

    def row_pointer(self, rank: int, bank: int, row: int, block: int = 0) -> int:
        """Hugepage offset of cache block ``block`` of a DRAM row."""
        return self.hugepage.pointer_to(rank, bank, row, block)

    def advance(self, duration_ns: float) -> None:
        """Idle the machine (refresh catches up on the next access)."""
        self.now_ns += duration_ns


def build_demo_system(
    rows_per_bank: int = 4096,
    seed: int = 2023,
    with_trr: bool = True,
    temperature_c: float = 72.0,
    hammer_strength: float = 8.0,
    press_strength: float = 0.5,
) -> RealSystem:
    """The paper's demo platform: S2 module (8Gb C-die) behind an i5-10400.

    ``rows_per_bank`` is reduced from 2^17 by default; the hugepage covers
    4096 rows per (rank, bank) either way.

    The demo specimen is hammer-hardened (``hammer_strength``) relative to
    the Table 5 fleet statistics so that the conventional-RowHammer
    baseline reproduces Fig. 23's near-zero bitflip counts, and the DIMM
    runs warm (``temperature_c``) as a stock system under sustained attack
    load does — both documented substitutions (see DESIGN.md).
    """
    geometry = Geometry(
        ranks=2,
        bank_groups=4,
        banks_per_group=4,
        rows_per_bank=rows_per_bank,
        row_bits=65536,
    )
    module = build_module(
        "S2",
        geometry=geometry,
        seed=seed,
        temperature_c=temperature_c,
        hammer_strength=hammer_strength,
        press_strength=press_strength,
    )
    return RealSystem(module, trr=TrrSampler() if with_trr else None)
