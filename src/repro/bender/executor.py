"""Timing-checked execution of DRAM test programs.

The executor plays a :class:`repro.bender.program.Program` against a
:class:`repro.dram.device.DramDevice`, enforcing the command timing minima
(tRP/tRC/tRAS) that DRAM Bender programs must respect, with refresh
disabled exactly like the paper's methodology (§3.1).

Steady command-only loops take a **bulk path**: a couple of warm-up
iterations run literally (so sandwich detection and episode bookkeeping
reach steady state), then the remaining iterations are deposited
analytically in one call per aggressor episode.  This is what makes
ACmin bisection over hundreds of thousands of activations tractable.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro import units
from repro.dram.device import Bitflip, DramDevice
from repro.dram.geometry import RowAddress
from repro.bender.loops import LoopSummary, summarize_steady_loop
from repro.bender.program import Act, FillRow, Instruction, Loop, Pre, Program, ReadRow, Wait
from repro.obs import NULL_OBSERVER, Observer, monotonic_s

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (isa imports us)
    from repro.bender.isa import Payload


class TimingViolation(Exception):
    """A command was issued before its minimum-interval constraint."""


@dataclass
class RowRead:
    """Result of one ReadRow instruction."""

    address: RowAddress
    data: np.ndarray
    bitflips: list[Bitflip]


@dataclass
class ExecutionResult:
    """Outcome of one program execution."""

    reads: list[RowRead] = field(default_factory=list)
    start_time: float = 0.0
    end_time: float = 0.0
    activations: int = 0
    #: Commands issued, by opcode.  Bulk-deposited loop iterations count
    #: as if run literally, so these match the command stream a real
    #: DRAM Bender board would see.
    act_commands: int = 0
    pre_commands: int = 0
    wait_commands: int = 0
    fill_commands: int = 0
    read_commands: int = 0
    #: Loop iterations executed (literal + bulk), over all loops.
    loop_iterations: int = 0
    #: Host wall-clock seconds spent executing the program.
    wall_seconds: float = 0.0

    @property
    def duration(self) -> float:
        """Program wall-clock duration in nanoseconds."""
        return self.end_time - self.start_time

    @property
    def commands_by_opcode(self) -> dict[str, int]:
        """Issued command counts keyed by opcode."""
        return {
            "act": self.act_commands,
            "pre": self.pre_commands,
            "wait": self.wait_commands,
            "fill": self.fill_commands,
            "read": self.read_commands,
        }

    @property
    def total_commands(self) -> int:
        """Total commands issued across all opcodes."""
        return (
            self.act_commands
            + self.pre_commands
            + self.wait_commands
            + self.fill_commands
            + self.read_commands
        )

    @property
    def bitflips(self) -> list[Bitflip]:
        """All bitflips observed across the program's row reads."""
        return [flip for read in self.reads for flip in read.bitflips]


@dataclass
class _BankTiming:
    last_act: float = -1e18
    last_pre: float = -1e18


#: Fixed model cost of housekeeping instructions (ns).  Public because the
#: static verifier (repro.lint.progcheck) mirrors them when it computes a
#: program's duration without executing it.
FILL_COST = 100.0
READ_COST = 200.0
_FILL_COST = FILL_COST
_READ_COST = READ_COST

#: Loop iterations executed literally before switching to the bulk path.
_WARMUP_ITERATIONS = 2


class ProgramExecutor:
    """Executes test programs against one DRAM device."""

    def __init__(
        self,
        device: DramDevice,
        check_timing: bool = True,
        observer: Observer | None = None,
    ) -> None:
        self.device = device
        self.check_timing = check_timing
        self.observer = observer or NULL_OBSERVER
        self._banks: dict[tuple[int, int], _BankTiming] = {}
        #: Precomputed loop summaries of the payload being executed
        #: (``id(loop) -> LoopSummary | None``); None between payloads.
        self._summaries: dict[int, LoopSummary | None] | None = None
        # Bound once: hot paths touch inert singletons under NULL_OBSERVER.
        self._violation_counter = self.observer.metrics.counter(
            "executor.timing_violations"
        )

    def _bank(self, rank: int, bank: int) -> _BankTiming:
        return self._banks.setdefault((rank, bank), _BankTiming())

    def run(
        self, program: Program, start_time: float = 0.0, verify: bool = False
    ) -> ExecutionResult:
        """Deprecated spelling of the compile/execute surface.

        .. deprecated::
            Compile once and execute the payload instead::

                from repro.bender import compile_program, execute

                result = execute(compile_program(program), device)

            or, holding an executor, ``executor.execute_payload(payload)``.
        """
        warnings.warn(
            "ProgramExecutor.run(...) is deprecated; compile the program with "
            "repro.bender.compile_program(...) and run the payload via "
            "repro.bender.execute(...) or ProgramExecutor.execute_payload(...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._execute(program, start_time=start_time, verify=verify)

    def execute_payload(
        self, payload: Payload, start_time: float = 0.0, verify: bool = False
    ) -> ExecutionResult:
        """Execute a compiled :class:`repro.bender.isa.Payload`.

        Identical semantics to interpreting the payload's decoded
        program, but steady loops reuse the summaries precomputed at
        compile time instead of re-analyzing the body on every run.
        """
        self.observer.metrics.counter("executor.payloads").inc()
        return self._execute(
            payload.program,
            start_time=start_time,
            verify=verify,
            summaries=payload.summaries,
        )

    def _execute(
        self,
        program: Program,
        start_time: float = 0.0,
        verify: bool = False,
        summaries: dict[int, LoopSummary | None] | None = None,
    ) -> ExecutionResult:
        """Execute ``program``; returns reads, bitflips, and timing.

        Each run is a fresh command session: per-bank timing history from
        earlier programs is discarded (the device's disturbance state is
        managed separately via ``reset_disturbance``).

        With ``verify=True`` the program is first checked by the static
        verifier (:mod:`repro.lint.progcheck`, refresh-disabled mode to
        match this executor's §3.1 methodology) and a
        :class:`repro.lint.progcheck.ProgramVerificationError` is raised
        before any instruction runs if it is malformed.
        """
        if verify:
            # Imported lazily: repro.lint.progcheck imports this module.
            from repro.lint.progcheck import verify_program

            verify_program(
                program, self.device.timing, budget=None, refresh_disabled=True
            )
        self._banks.clear()
        self._summaries = summaries
        result = ExecutionResult(start_time=start_time)
        activations_before = self.device.activation_count
        # Host-time profiling is intentional (observability, not simulated
        # time); monotonic_s is the codebase's one sanctioned clock read.
        wall_start = monotonic_s()
        try:
            end_time = self._run_block(list(program), start_time, result)
        finally:
            self._summaries = None
        result.wall_seconds = monotonic_s() - wall_start
        result.end_time = end_time
        result.activations = self.device.activation_count - activations_before
        self._flush_metrics(result)
        return result

    def _flush_metrics(self, result: ExecutionResult) -> None:
        """Push one run's bookkeeping into the observer (no-op if null)."""
        metrics = self.observer.metrics
        metrics.counter("executor.programs").inc()
        for opcode, count in result.commands_by_opcode.items():
            if count:
                metrics.counter("executor.commands", opcode=opcode).inc(count)
        if result.loop_iterations:
            metrics.counter("executor.loop_iterations").inc(result.loop_iterations)
        if result.wall_seconds > 0:
            # Simulated nanoseconds per wall second: the executor's speed.
            metrics.histogram("executor.ns_per_wall_s").record(
                result.duration / result.wall_seconds
            )
            metrics.histogram("executor.wall_s").record(result.wall_seconds)

    # ------------------------------------------------------------------

    def _run_block(
        self, instructions: list[Instruction], time_ns: float, result: ExecutionResult
    ) -> float:
        for instruction in instructions:
            time_ns = self._run_one(instruction, time_ns, result)
        return time_ns

    def _run_one(
        self, instruction: Instruction, time_ns: float, result: ExecutionResult
    ) -> float:
        device = self.device
        timing = device.timing
        if isinstance(instruction, Wait):
            result.wait_commands += 1
            return time_ns + instruction.duration
        if isinstance(instruction, Act):
            address = instruction.address
            bank = self._bank(address.rank, address.bank)
            if self.check_timing:
                if time_ns - bank.last_pre < timing.tRP - 1e-9:
                    self._violation_counter.inc()
                    raise TimingViolation(
                        f"ACT at {units.format_time(time_ns)} violates tRP: "
                        f"{units.format_time(time_ns - bank.last_pre)} since PRE "
                        f"< {units.format_time(timing.tRP)}"
                    )
                if time_ns - bank.last_act < timing.tRC - 1e-9:
                    self._violation_counter.inc()
                    raise TimingViolation(
                        f"ACT at {units.format_time(time_ns)} violates tRC: "
                        f"{units.format_time(time_ns - bank.last_act)} since ACT "
                        f"< {units.format_time(timing.tRC)}"
                    )
            device.act(address, time_ns)
            bank.last_act = time_ns
            result.act_commands += 1
            return time_ns
        if isinstance(instruction, Pre):
            bank = self._bank(instruction.rank, instruction.bank)
            if self.check_timing and time_ns - bank.last_act < timing.tRAS - 1e-9:
                self._violation_counter.inc()
                raise TimingViolation(
                    f"PRE at {units.format_time(time_ns)} violates tRAS: "
                    f"{units.format_time(time_ns - bank.last_act)} since ACT "
                    f"< {units.format_time(timing.tRAS)}"
                )
            device.precharge(instruction.rank, instruction.bank, time_ns)
            bank.last_pre = time_ns
            result.pre_commands += 1
            return time_ns
        if isinstance(instruction, FillRow):
            data = np.full(
                device.geometry.row_bits // 8, instruction.byte_value, dtype=np.uint8
            )
            device.write_row(instruction.address, data, time_ns)
            result.fill_commands += 1
            return time_ns + _FILL_COST
        if isinstance(instruction, ReadRow):
            data, flips = device.read_row(instruction.address, time_ns)
            result.reads.append(RowRead(instruction.address, data, flips))
            result.read_commands += 1
            return time_ns + _READ_COST
        if isinstance(instruction, Loop):
            return self._run_loop(instruction, time_ns, result)
        raise TypeError(f"unknown instruction {instruction!r}")

    # ------------------------------------------------------------------

    def _run_loop(self, loop: Loop, time_ns: float, result: ExecutionResult) -> float:
        body = list(loop.body)
        if not loop.is_steady or loop.count <= _WARMUP_ITERATIONS + 2:
            result.loop_iterations += loop.count
            for _ in range(loop.count):
                time_ns = self._run_block(body, time_ns, result)
            return time_ns
        result.loop_iterations += loop.count
        for _ in range(_WARMUP_ITERATIONS):
            time_ns = self._run_block(body, time_ns, result)
        remaining = loop.count - _WARMUP_ITERATIONS
        summary = self._loop_summary(loop)
        if summary is None:
            # Unbalanced body (e.g. row left open): run literally.
            for _ in range(remaining):
                time_ns = self._run_block(body, time_ns, result)
            return time_ns
        period = summary.period
        # Bulk-deposited iterations still count as issued commands.
        for instruction in body:
            if isinstance(instruction, Act):
                result.act_commands += remaining
            elif isinstance(instruction, Pre):
                result.pre_commands += remaining
            elif isinstance(instruction, Wait):
                result.wait_commands += remaining
        base = time_ns + (remaining - 1) * period
        for episode in summary.episodes:
            self.device.deposit_episodes(
                episode.address,
                t_on=episode.t_on,
                t_off=episode.t_off,
                end_time=base + episode.pre_offset,
                count=remaining,
            )
        bank_keys = {
            (episode.address.rank, episode.address.bank)
            for episode in summary.episodes
        }
        for rank, bank in bank_keys:
            state = self._bank(rank, bank)
            state.last_act += remaining * period
            state.last_pre += remaining * period
        return time_ns + remaining * period

    def _loop_summary(self, loop: Loop) -> LoopSummary | None:
        """Summary of the loop body, from the payload cache if compiled."""
        cache = self._summaries
        if cache is not None:
            try:
                return cache[id(loop)]
            except KeyError:
                pass
        return summarize_steady_loop(loop.body)
