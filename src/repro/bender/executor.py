"""Timing-checked execution of DRAM test programs.

The executor plays a :class:`repro.bender.program.Program` against a
:class:`repro.dram.device.DramDevice`, enforcing the command timing minima
(tRP/tRC/tRAS) that DRAM Bender programs must respect, with refresh
disabled exactly like the paper's methodology (§3.1).

Steady command-only loops take a **bulk path**: a couple of warm-up
iterations run literally (so sandwich detection and episode bookkeeping
reach steady state), then the remaining iterations are deposited
analytically in one call per aggressor episode.  This is what makes
ACmin bisection over hundreds of thousands of activations tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.dram.device import Bitflip, DramDevice
from repro.dram.geometry import RowAddress
from repro.bender.program import Act, FillRow, Instruction, Loop, Pre, Program, ReadRow, Wait
from repro.obs import NULL_OBSERVER, Observer, monotonic_s


class TimingViolation(Exception):
    """A command was issued before its minimum-interval constraint."""


@dataclass
class RowRead:
    """Result of one ReadRow instruction."""

    address: RowAddress
    data: np.ndarray
    bitflips: list[Bitflip]


@dataclass
class ExecutionResult:
    """Outcome of one program execution."""

    reads: list[RowRead] = field(default_factory=list)
    start_time: float = 0.0
    end_time: float = 0.0
    activations: int = 0
    #: Commands issued, by opcode.  Bulk-deposited loop iterations count
    #: as if run literally, so these match the command stream a real
    #: DRAM Bender board would see.
    act_commands: int = 0
    pre_commands: int = 0
    wait_commands: int = 0
    fill_commands: int = 0
    read_commands: int = 0
    #: Loop iterations executed (literal + bulk), over all loops.
    loop_iterations: int = 0
    #: Host wall-clock seconds spent executing the program.
    wall_seconds: float = 0.0

    @property
    def duration(self) -> float:
        """Program wall-clock duration in nanoseconds."""
        return self.end_time - self.start_time

    @property
    def commands_by_opcode(self) -> dict[str, int]:
        """Issued command counts keyed by opcode."""
        return {
            "act": self.act_commands,
            "pre": self.pre_commands,
            "wait": self.wait_commands,
            "fill": self.fill_commands,
            "read": self.read_commands,
        }

    @property
    def total_commands(self) -> int:
        """Total commands issued across all opcodes."""
        return (
            self.act_commands
            + self.pre_commands
            + self.wait_commands
            + self.fill_commands
            + self.read_commands
        )

    @property
    def bitflips(self) -> list[Bitflip]:
        """All bitflips observed across the program's row reads."""
        return [flip for read in self.reads for flip in read.bitflips]


@dataclass
class _BankTiming:
    last_act: float = -1e18
    last_pre: float = -1e18


#: Fixed model cost of housekeeping instructions (ns).  Public because the
#: static verifier (repro.lint.progcheck) mirrors them when it computes a
#: program's duration without executing it.
FILL_COST = 100.0
READ_COST = 200.0
_FILL_COST = FILL_COST
_READ_COST = READ_COST

#: Loop iterations executed literally before switching to the bulk path.
_WARMUP_ITERATIONS = 2


class ProgramExecutor:
    """Executes test programs against one DRAM device."""

    def __init__(
        self,
        device: DramDevice,
        check_timing: bool = True,
        observer: Observer | None = None,
    ) -> None:
        self.device = device
        self.check_timing = check_timing
        self.observer = observer or NULL_OBSERVER
        self._banks: dict[tuple[int, int], _BankTiming] = {}
        # Bound once: hot paths touch inert singletons under NULL_OBSERVER.
        self._violation_counter = self.observer.metrics.counter(
            "executor.timing_violations"
        )

    def _bank(self, rank: int, bank: int) -> _BankTiming:
        return self._banks.setdefault((rank, bank), _BankTiming())

    def run(
        self, program: Program, start_time: float = 0.0, verify: bool = False
    ) -> ExecutionResult:
        """Execute ``program``; returns reads, bitflips, and timing.

        Each run is a fresh command session: per-bank timing history from
        earlier programs is discarded (the device's disturbance state is
        managed separately via ``reset_disturbance``).

        With ``verify=True`` the program is first checked by the static
        verifier (:mod:`repro.lint.progcheck`, refresh-disabled mode to
        match this executor's §3.1 methodology) and a
        :class:`repro.lint.progcheck.ProgramVerificationError` is raised
        before any instruction runs if it is malformed.
        """
        if verify:
            # Imported lazily: repro.lint.progcheck imports this module.
            from repro.lint.progcheck import verify_program

            verify_program(
                program, self.device.timing, budget=None, refresh_disabled=True
            )
        self._banks.clear()
        result = ExecutionResult(start_time=start_time)
        activations_before = self.device.activation_count
        # Host-time profiling is intentional (observability, not simulated
        # time); monotonic_s is the codebase's one sanctioned clock read.
        wall_start = monotonic_s()
        end_time = self._run_block(list(program), start_time, result)
        result.wall_seconds = monotonic_s() - wall_start
        result.end_time = end_time
        result.activations = self.device.activation_count - activations_before
        self._flush_metrics(result)
        return result

    def _flush_metrics(self, result: ExecutionResult) -> None:
        """Push one run's bookkeeping into the observer (no-op if null)."""
        metrics = self.observer.metrics
        metrics.counter("executor.programs").inc()
        for opcode, count in result.commands_by_opcode.items():
            if count:
                metrics.counter("executor.commands", opcode=opcode).inc(count)
        if result.loop_iterations:
            metrics.counter("executor.loop_iterations").inc(result.loop_iterations)
        if result.wall_seconds > 0:
            # Simulated nanoseconds per wall second: the executor's speed.
            metrics.histogram("executor.ns_per_wall_s").record(
                result.duration / result.wall_seconds
            )
            metrics.histogram("executor.wall_s").record(result.wall_seconds)

    # ------------------------------------------------------------------

    def _run_block(
        self, instructions: list[Instruction], time_ns: float, result: ExecutionResult
    ) -> float:
        for instruction in instructions:
            time_ns = self._run_one(instruction, time_ns, result)
        return time_ns

    def _run_one(
        self, instruction: Instruction, time_ns: float, result: ExecutionResult
    ) -> float:
        device = self.device
        timing = device.timing
        if isinstance(instruction, Wait):
            result.wait_commands += 1
            return time_ns + instruction.duration
        if isinstance(instruction, Act):
            address = instruction.address
            bank = self._bank(address.rank, address.bank)
            if self.check_timing:
                if time_ns - bank.last_pre < timing.tRP - 1e-9:
                    self._violation_counter.inc()
                    raise TimingViolation(
                        f"ACT at {units.format_time(time_ns)} violates tRP: "
                        f"{units.format_time(time_ns - bank.last_pre)} since PRE "
                        f"< {units.format_time(timing.tRP)}"
                    )
                if time_ns - bank.last_act < timing.tRC - 1e-9:
                    self._violation_counter.inc()
                    raise TimingViolation(
                        f"ACT at {units.format_time(time_ns)} violates tRC: "
                        f"{units.format_time(time_ns - bank.last_act)} since ACT "
                        f"< {units.format_time(timing.tRC)}"
                    )
            device.act(address, time_ns)
            bank.last_act = time_ns
            result.act_commands += 1
            return time_ns
        if isinstance(instruction, Pre):
            bank = self._bank(instruction.rank, instruction.bank)
            if self.check_timing and time_ns - bank.last_act < timing.tRAS - 1e-9:
                self._violation_counter.inc()
                raise TimingViolation(
                    f"PRE at {units.format_time(time_ns)} violates tRAS: "
                    f"{units.format_time(time_ns - bank.last_act)} since ACT "
                    f"< {units.format_time(timing.tRAS)}"
                )
            device.precharge(instruction.rank, instruction.bank, time_ns)
            bank.last_pre = time_ns
            result.pre_commands += 1
            return time_ns
        if isinstance(instruction, FillRow):
            data = np.full(
                device.geometry.row_bits // 8, instruction.byte_value, dtype=np.uint8
            )
            device.write_row(instruction.address, data, time_ns)
            result.fill_commands += 1
            return time_ns + _FILL_COST
        if isinstance(instruction, ReadRow):
            data, flips = device.read_row(instruction.address, time_ns)
            result.reads.append(RowRead(instruction.address, data, flips))
            result.read_commands += 1
            return time_ns + _READ_COST
        if isinstance(instruction, Loop):
            return self._run_loop(instruction, time_ns, result)
        raise TypeError(f"unknown instruction {instruction!r}")

    # ------------------------------------------------------------------

    def _run_loop(self, loop: Loop, time_ns: float, result: ExecutionResult) -> float:
        body = list(loop.body)
        if not loop.is_steady or loop.count <= _WARMUP_ITERATIONS + 2:
            result.loop_iterations += loop.count
            for _ in range(loop.count):
                time_ns = self._run_block(body, time_ns, result)
            return time_ns
        result.loop_iterations += loop.count
        for _ in range(_WARMUP_ITERATIONS):
            time_ns = self._run_block(body, time_ns, result)
        remaining = loop.count - _WARMUP_ITERATIONS
        episodes, period = self._analyze_iteration(body)
        if episodes is None:
            # Unbalanced body (e.g. row left open): run literally.
            for _ in range(remaining):
                time_ns = self._run_block(body, time_ns, result)
            return time_ns
        # Bulk-deposited iterations still count as issued commands.
        for instruction in body:
            if isinstance(instruction, Act):
                result.act_commands += remaining
            elif isinstance(instruction, Pre):
                result.pre_commands += remaining
            elif isinstance(instruction, Wait):
                result.wait_commands += remaining
        base = time_ns + (remaining - 1) * period
        for address, act_off, pre_off, t_off in episodes:
            self.device.deposit_episodes(
                address,
                t_on=pre_off - act_off,
                t_off=t_off,
                end_time=base + pre_off,
                count=remaining,
            )
        bank_keys = {(addr.rank, addr.bank) for addr, *_ in episodes}
        for rank, bank in bank_keys:
            state = self._bank(rank, bank)
            state.last_act += remaining * period
            state.last_pre += remaining * period
        return time_ns + remaining * period

    def _analyze_iteration(
        self, body: list[Instruction]
    ) -> tuple[list[tuple[RowAddress, float, float, float]] | None, float]:
        """Extract (address, act_offset, pre_offset, t_off) per episode.

        Returns ``(None, period)`` when the body cannot be bulk-deposited
        (a row stays open across the iteration boundary).
        """
        offset = 0.0
        open_rows: dict[tuple[int, int], tuple[RowAddress, float]] = {}
        raw: list[tuple[RowAddress, float, float]] = []
        for instruction in body:
            if isinstance(instruction, Wait):
                offset += instruction.duration
            elif isinstance(instruction, Act):
                key = (instruction.address.rank, instruction.address.bank)
                if key in open_rows:
                    return None, offset
                open_rows[key] = (instruction.address, offset)
            elif isinstance(instruction, Pre):
                key = (instruction.rank, instruction.bank)
                opened = open_rows.pop(key, None)
                if opened is None:
                    continue
                address, act_off = opened
                raw.append((address, act_off, offset))
        if open_rows or not raw:
            return None, offset
        period = offset
        # Off-time of each episode: gap until the next activation of the
        # same row in the cyclic schedule.
        episodes: list[tuple[RowAddress, float, float, float]] = []
        for index, (address, act_off, pre_off) in enumerate(raw):
            next_act = None
            for other_address, other_act, _ in raw[index + 1 :]:
                if other_address == address:
                    next_act = other_act
                    break
            if next_act is None:
                for other_address, other_act, _ in raw[: index + 1]:
                    if other_address == address:
                        next_act = other_act + period
                        break
            assert next_act is not None
            episodes.append((address, act_off, pre_off, next_act - pre_off))
        return episodes, period
