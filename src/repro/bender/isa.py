"""Compiled payload ISA: packed 32-bit words with JMP-encoded loops.

DRAM Bender-lineage testers ship programs to the FPGA as a flat array
of packed instruction words; loops are a count register plus a bounded
backward jump, never unrolled.  This module mirrors that encoding so a
:class:`repro.bender.program.Program` compiles once into a compact
binary :class:`Payload` and executes many times through the
loop-summarized engine (:meth:`ProgramExecutor.execute_payload`).

Word format (32 bits, opcode in bits 31:28)::

    ACT    0x1  | rank[27:26] | bank[25:20] | row[19:0]
    PRE    0x2  | rank[27:26] | bank[25:20] | 0
    WAIT   0x3  | timeslices[27:0]          (duration = n x command_period)
    WAITC  0x4  | constant-pool index[27:0] (exact-float duration)
    FILL   0x5  | rank[27:26] | bank[25:20] | row[19:0]  (follows an IMM)
    READ   0x6  | rank[27:26] | bank[25:20] | row[19:0]
    SETCNT 0x7  | reg[27:24]  | count[23:0]
    IMM    0x8  | immediate[27:0]           (fill byte for the next FILL)
    JBNZ   0x9  | reg[27:24]  | offset[23:0] (backward, decrement+branch)
    END    0xF

A WAIT's duration is stored as a count of ``command_period`` timeslices
only when that product is *bit-exact* in float arithmetic; any other
duration goes through the constant pool (WAITC), so a decoded program
is always float-identical to its source.  Loops nest through the count
register file (one register per nesting depth, 16 deep); a loop with a
statically-zero count or an empty body is elided at compile time.

The packed words are the single source of truth: :func:`compile_program`
encodes and immediately decodes them back, so every payload proves its
own round-trip, and :meth:`Payload.with_loop_count` re-derives program,
summaries, and duration from the patched words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro import units
from repro.bender.executor import ExecutionResult, ProgramExecutor
from repro.bender.loops import LoopSummary, summarize_steady_loop
from repro.bender.program import (
    Act,
    FillRow,
    Instruction,
    Loop,
    Pre,
    Program,
    ReadRow,
    Wait,
)
from repro.dram.device import DramDevice
from repro.dram.geometry import RowAddress
from repro.dram.timing import DDR4_3200W, TimingParameters
from repro.obs import Observer

__all__ = [
    "CompileError",
    "Payload",
    "compile_program",
    "disassemble",
    "execute",
]

OP_ACT = 0x1
OP_PRE = 0x2
OP_WAIT = 0x3
OP_WAITC = 0x4
OP_FILL = 0x5
OP_READ = 0x6
OP_SETCNT = 0x7
OP_IMM = 0x8
OP_JBNZ = 0x9
OP_END = 0xF

_MNEMONICS = {
    OP_ACT: "ACT",
    OP_PRE: "PRE",
    OP_WAIT: "WAIT",
    OP_WAITC: "WAITC",
    OP_FILL: "FILL",
    OP_READ: "READ",
    OP_SETCNT: "SETCNT",
    OP_IMM: "IMM",
    OP_JBNZ: "JBNZ",
    OP_END: "END",
}

#: Field capacities of the packed word.
MAX_RANK = (1 << 2) - 1
MAX_BANK = (1 << 6) - 1
MAX_ROW = (1 << 20) - 1
MAX_LOOP_COUNT = (1 << 24) - 1
MAX_TIMESLICES = (1 << 28) - 1
MAX_LOOP_DEPTH = 16

_OPERAND_MASK = (1 << 28) - 1
_IMM24_MASK = (1 << 24) - 1


class CompileError(Exception):
    """A program cannot be encoded into (or decoded from) the ISA."""


# ----------------------------------------------------------------------
# Word packing
# ----------------------------------------------------------------------


def _pack_address(opcode: int, rank: int, bank: int, row: int) -> int:
    if not 0 <= rank <= MAX_RANK:
        raise CompileError(f"rank {rank} exceeds the {MAX_RANK + 1}-rank ISA field")
    if not 0 <= bank <= MAX_BANK:
        raise CompileError(f"bank {bank} exceeds the {MAX_BANK + 1}-bank ISA field")
    if not 0 <= row <= MAX_ROW:
        raise CompileError(f"row {row} exceeds the 20-bit ISA row field")
    return (opcode << 28) | (rank << 26) | (bank << 20) | row


def _unpack_address(word: int) -> tuple[int, int, int]:
    return (word >> 26) & 0x3, (word >> 20) & 0x3F, word & 0xFFFFF


def _pack_setcnt(reg: int, count: int) -> int:
    return (OP_SETCNT << 28) | (reg << 24) | count


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


class _Encoder:
    """Accumulates packed words and the exact-float constant pool."""

    def __init__(self, timeslice_ns: float) -> None:
        self.timeslice_ns = timeslice_ns
        self.words: list[int] = []
        self.constants: list[float] = []
        self._constant_index: dict[float, int] = {}
        self.top_level_loops: list[int] = []

    def _constant(self, value: float) -> int:
        index = self._constant_index.get(value)
        if index is None:
            index = len(self.constants)
            if index > _OPERAND_MASK:
                raise CompileError("constant pool exceeds the 28-bit index field")
            self.constants.append(value)
            self._constant_index[value] = index
        return index

    def encode_block(self, instructions: Sequence[Instruction], depth: int) -> None:
        for instruction in instructions:
            self.encode(instruction, depth)

    def encode(self, instruction: Instruction, depth: int) -> None:
        if isinstance(instruction, Wait):
            duration = instruction.duration
            slices = int(round(duration / self.timeslice_ns))
            if 0 <= slices <= MAX_TIMESLICES and slices * self.timeslice_ns == duration:
                self.words.append((OP_WAIT << 28) | slices)
            else:
                self.words.append((OP_WAITC << 28) | self._constant(duration))
        elif isinstance(instruction, Act):
            address = instruction.address
            self.words.append(
                _pack_address(OP_ACT, address.rank, address.bank, address.row)
            )
        elif isinstance(instruction, Pre):
            self.words.append(
                _pack_address(OP_PRE, instruction.rank, instruction.bank, 0)
            )
        elif isinstance(instruction, FillRow):
            address = instruction.address
            self.words.append((OP_IMM << 28) | instruction.byte_value)
            self.words.append(
                _pack_address(OP_FILL, address.rank, address.bank, address.row)
            )
        elif isinstance(instruction, ReadRow):
            address = instruction.address
            self.words.append(
                _pack_address(OP_READ, address.rank, address.bank, address.row)
            )
        elif isinstance(instruction, Loop):
            self._encode_loop(instruction, depth)
        else:
            raise CompileError(f"unknown instruction {instruction!r}")

    def _encode_loop(self, loop: Loop, depth: int) -> None:
        if loop.count == 0 or not loop.body:
            return  # statically elided: executes nothing either way
        if loop.count > MAX_LOOP_COUNT:
            raise CompileError(
                f"loop count {loop.count} exceeds the 24-bit SETCNT field"
            )
        if depth >= MAX_LOOP_DEPTH:
            raise CompileError(
                f"loops nested deeper than the {MAX_LOOP_DEPTH}-register file"
            )
        setcnt_index = len(self.words)
        self.words.append(_pack_setcnt(depth, loop.count))
        body_start = len(self.words)
        self.encode_block(loop.body, depth + 1)
        body_length = len(self.words) - body_start
        if body_length == 0:
            # Body held only elided loops: drop the dangling SETCNT too.
            del self.words[setcnt_index:]
            return
        if body_length > _IMM24_MASK:
            raise CompileError("loop body exceeds the 24-bit JBNZ offset field")
        if depth == 0:
            self.top_level_loops.append(setcnt_index)
        self.words.append((OP_JBNZ << 28) | (depth << 24) | body_length)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def _decode_block(
    words: Sequence[int],
    index: int,
    constants: Sequence[float],
    timeslice_ns: float,
    closing_reg: int | None,
) -> tuple[list[Instruction], int]:
    """Decode until the JBNZ closing ``closing_reg`` (or END at top level).

    Returns the decoded instructions and the index of the terminating
    word (the caller consumes the JBNZ/END itself).
    """
    out: list[Instruction] = []
    while index < len(words):
        word = words[index]
        opcode = word >> 28
        operand = word & _OPERAND_MASK
        if opcode == OP_JBNZ:
            reg = (word >> 24) & 0xF
            if reg != closing_reg:
                raise CompileError(
                    f"JBNZ on register {reg} closes no open loop "
                    f"(expected {closing_reg})"
                )
            return out, index
        if opcode == OP_END:
            if closing_reg is not None:
                raise CompileError("END inside an open loop")
            return out, index
        index += 1
        if opcode == OP_ACT:
            rank, bank, row = _unpack_address(word)
            out.append(Act(RowAddress(rank, bank, row)))
        elif opcode == OP_PRE:
            rank, bank, _row = _unpack_address(word)
            out.append(Pre(rank, bank))
        elif opcode == OP_WAIT:
            out.append(Wait(operand * timeslice_ns))
        elif opcode == OP_WAITC:
            if operand >= len(constants):
                raise CompileError(f"WAITC index {operand} outside the constant pool")
            out.append(Wait(constants[operand]))
        elif opcode == OP_IMM:
            if index >= len(words) or words[index] >> 28 != OP_FILL:
                raise CompileError("IMM not followed by a FILL word")
            rank, bank, row = _unpack_address(words[index])
            index += 1
            out.append(FillRow(RowAddress(rank, bank, row), operand & 0xFF))
        elif opcode == OP_FILL:
            raise CompileError("FILL without a preceding IMM word")
        elif opcode == OP_READ:
            rank, bank, row = _unpack_address(word)
            out.append(ReadRow(RowAddress(rank, bank, row)))
        elif opcode == OP_SETCNT:
            reg = (word >> 24) & 0xF
            count = word & _IMM24_MASK
            body_start = index
            body, jbnz_index = _decode_block(
                words, index, constants, timeslice_ns, closing_reg=reg
            )
            offset = words[jbnz_index] & _IMM24_MASK
            if offset != jbnz_index - body_start:
                raise CompileError(
                    f"JBNZ offset {offset} does not span its loop body "
                    f"({jbnz_index - body_start} words)"
                )
            index = jbnz_index + 1
            out.append(Loop(count, tuple(body)))
        else:
            raise CompileError(f"unknown opcode 0x{opcode:X}")
    raise CompileError("payload ran off the end without an END word")


def _decode_payload(
    words: Sequence[int], constants: Sequence[float], timeslice_ns: float
) -> Program:
    if not words:
        raise CompileError("empty payload")
    instructions, end_index = _decode_block(
        words, 0, constants, timeslice_ns, closing_reg=None
    )
    if words[end_index] >> 28 != OP_END:
        raise CompileError("payload must terminate with an END word")
    if end_index != len(words) - 1:
        raise CompileError("instruction words after END")
    return Program(instructions)


def _collect_summaries(
    instructions: Sequence[Instruction],
    into: dict[int, LoopSummary | None],
) -> None:
    for instruction in instructions:
        if isinstance(instruction, Loop):
            into[id(instruction)] = (
                summarize_steady_loop(instruction.body)
                if instruction.is_steady
                else None
            )
            _collect_summaries(instruction.body, into)


# ----------------------------------------------------------------------
# Payload
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Payload:
    """A compiled DRAM test program: packed words plus execution cache.

    ``words``/``constants``/``timeslice_ns`` are the binary artifact;
    ``program``/``summaries``/``duration_ns`` are derived from the words
    at construction (never trusted from elsewhere), so the binary stays
    the single source of truth.
    """

    words: tuple[int, ...]
    #: Exact-float durations referenced by WAITC words.
    constants: tuple[float, ...]
    #: Nanoseconds per WAIT timeslice (the timing's command period).
    timeslice_ns: float
    #: Simulated duration of the decoded program (wait time only, loops
    #: multiplied) — what the refresh-window budget check consumes.
    duration_ns: float
    #: Word indices of the top-level SETCNTs, for ``with_loop_count``.
    top_level_loops: tuple[int, ...]
    program: Program = field(compare=False, repr=False)
    summaries: dict[int, LoopSummary | None] = field(compare=False, repr=False)

    def __len__(self) -> int:
        return len(self.words)

    def __iter__(self) -> Iterator[int]:
        return iter(self.words)

    def with_loop_count(self, count: int, loop_index: int = 0) -> Payload:
        """This payload with one top-level loop's count replaced.

        Patches the SETCNT word and re-decodes; sweeps that vary only
        the iteration count (ACmin bisection, activation-count sweeps)
        recompile nothing else.
        """
        if not 0 <= count <= MAX_LOOP_COUNT:
            raise CompileError(
                f"loop count {count} exceeds the 24-bit SETCNT field"
            )
        try:
            word_index = self.top_level_loops[loop_index]
        except IndexError:
            raise CompileError(
                f"payload has {len(self.top_level_loops)} top-level "
                f"loop(s); no loop index {loop_index}"
            ) from None
        words = list(self.words)
        words[word_index] = (words[word_index] & ~_IMM24_MASK) | count
        return _payload_from_words(
            words, self.constants, self.timeslice_ns, self.top_level_loops
        )


def _payload_from_words(
    words: Sequence[int],
    constants: Sequence[float],
    timeslice_ns: float,
    top_level_loops: Sequence[int],
) -> Payload:
    program = _decode_payload(words, constants, timeslice_ns)
    summaries: dict[int, LoopSummary | None] = {}
    _collect_summaries(program.instructions, summaries)
    return Payload(
        words=tuple(words),
        constants=tuple(constants),
        timeslice_ns=timeslice_ns,
        duration_ns=program.duration(),
        top_level_loops=tuple(top_level_loops),
        program=program,
        summaries=summaries,
    )


# ----------------------------------------------------------------------
# The unified API
# ----------------------------------------------------------------------


def compile_program(
    program: Program | Sequence[Instruction],
    timing: TimingParameters = DDR4_3200W,
) -> Payload:
    """Compile a program into a packed-word :class:`Payload`.

    The encoder's output is immediately decoded back (words are the
    source of truth), so every successful compile is a proven
    encode/decode round-trip.
    """
    encoder = _Encoder(timing.command_period)
    encoder.encode_block(list(program), depth=0)
    encoder.words.append(OP_END << 28)
    return _payload_from_words(
        encoder.words,
        encoder.constants,
        encoder.timeslice_ns,
        encoder.top_level_loops,
    )


def execute(
    payload: Payload,
    device: DramDevice,
    *,
    start_time: float = 0.0,
    check_timing: bool = True,
    verify: bool = False,
    observer: Observer | None = None,
) -> ExecutionResult:
    """Execute a compiled payload against a device.

    The module-level entry point of the unified surface; hot loops that
    reuse one executor across payloads should prefer
    :meth:`repro.bender.executor.ProgramExecutor.execute_payload` (or
    :meth:`repro.bender.infrastructure.TestingInfrastructure.execute`).
    """
    executor = ProgramExecutor(device, check_timing=check_timing, observer=observer)
    return executor.execute_payload(payload, start_time=start_time, verify=verify)


# ----------------------------------------------------------------------
# Disassembly
# ----------------------------------------------------------------------


def _describe(word: int, payload: Payload) -> str:
    opcode = word >> 28
    operand = word & _OPERAND_MASK
    mnemonic = _MNEMONICS.get(opcode, f"OP_{opcode:X}")
    if opcode in (OP_ACT, OP_FILL, OP_READ):
        rank, bank, row = _unpack_address(word)
        return f"{mnemonic:<6} rank={rank} bank={bank} row={row}"
    if opcode == OP_PRE:
        rank, bank, _row = _unpack_address(word)
        return f"{mnemonic:<6} rank={rank} bank={bank}"
    if opcode == OP_WAIT:
        duration = operand * payload.timeslice_ns
        return f"{mnemonic:<6} {operand} slices ({units.format_time(duration)})"
    if opcode == OP_WAITC:
        duration = (
            units.format_time(payload.constants[operand])
            if operand < len(payload.constants)
            else "?"
        )
        return f"{mnemonic:<6} c{operand} ({duration})"
    if opcode == OP_IMM:
        return f"{mnemonic:<6} 0x{operand & 0xFF:02X}"
    if opcode == OP_SETCNT:
        return f"{mnemonic:<6} r{(word >> 24) & 0xF}, {word & _IMM24_MASK}"
    if opcode == OP_JBNZ:
        return f"{mnemonic:<6} r{(word >> 24) & 0xF}, -{word & _IMM24_MASK}"
    return mnemonic


def disassemble(payload: Payload) -> str:
    """Human-readable listing: ``index  hex-word  mnemonic operands``."""
    lines = [
        f"{index:04d}  0x{word:08X}  {_describe(word, payload)}"
        for index, word in enumerate(payload.words)
    ]
    for index, constant in enumerate(payload.constants):
        lines.append(f"const c{index} = {constant!r} ns")
    return "\n".join(lines)
