"""Shared no-unroll analysis of steady DRAM command loops.

Both consumers of loop structure live here so they cannot drift apart:

* the executor's bulk path (:mod:`repro.bender.executor`) and the
  compiled-payload path (:mod:`repro.bender.isa`) summarize a steady
  loop body once via :func:`summarize_steady_loop` and then apply one
  closed-form dose/state update per aggressor episode x iteration
  count instead of replaying the body activation by activation;
* the static verifier (:mod:`repro.lint.progcheck`) walks a loop body
  at most twice and extrapolates the remaining iterations with
  :func:`collapsed_loop_end`.

A loop is *steady* when its body contains only Act/Pre/Wait commands
(:attr:`repro.bender.program.Loop.is_steady`); only steady bodies are
summarizable, and even then the body must close every row it opens
within one iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bender.program import Act, Instruction, Pre, Wait
from repro.dram.geometry import RowAddress

__all__ = [
    "LoopEpisode",
    "LoopSummary",
    "collapsed_loop_end",
    "summarize_steady_loop",
]


@dataclass(frozen=True)
class LoopEpisode:
    """One aggressor ACT→PRE episode within a steady loop iteration."""

    address: RowAddress
    #: Nanoseconds from the iteration start to the row's ACT.
    act_offset: float
    #: Nanoseconds from the iteration start to the row's PRE.
    pre_offset: float
    #: Gap until the same row's next ACT in the cyclic schedule.
    t_off: float

    @property
    def t_on(self) -> float:
        """Row-open time of the episode (the paper's t_AggON)."""
        return self.pre_offset - self.act_offset


@dataclass(frozen=True)
class LoopSummary:
    """Closed-form description of one steady loop iteration."""

    episodes: tuple[LoopEpisode, ...]
    #: Nanoseconds one iteration advances simulated time.
    period: float


def summarize_steady_loop(body: Sequence[Instruction]) -> LoopSummary | None:
    """Summarize one iteration of a steady loop body, or ``None``.

    Returns ``None`` when the body cannot be bulk-deposited: a bank is
    re-activated while its row is still open, a row stays open across
    the iteration boundary, or the body performs no complete episode.
    """
    offset = 0.0
    open_rows: dict[tuple[int, int], tuple[RowAddress, float]] = {}
    raw: list[tuple[RowAddress, float, float]] = []
    for instruction in body:
        if isinstance(instruction, Wait):
            offset += instruction.duration
        elif isinstance(instruction, Act):
            key = (instruction.address.rank, instruction.address.bank)
            if key in open_rows:
                return None
            open_rows[key] = (instruction.address, offset)
        elif isinstance(instruction, Pre):
            key = (instruction.rank, instruction.bank)
            opened = open_rows.pop(key, None)
            if opened is None:
                continue
            address, act_off = opened
            raw.append((address, act_off, offset))
    if open_rows or not raw:
        return None
    period = offset
    # Off-time of each episode: gap until the next activation of the
    # same row in the cyclic schedule.
    episodes: list[LoopEpisode] = []
    for index, (address, act_off, pre_off) in enumerate(raw):
        next_act = None
        for other_address, other_act, _ in raw[index + 1 :]:
            if other_address == address:
                next_act = other_act
                break
        if next_act is None:
            for other_address, other_act, _ in raw[: index + 1]:
                if other_address == address:
                    next_act = other_act + period
                    break
        assert next_act is not None
        episodes.append(LoopEpisode(address, act_off, pre_off, next_act - pre_off))
    return LoopSummary(episodes=tuple(episodes), period=period)


def collapsed_loop_end(after_first: float, after_second: float, count: int) -> float:
    """End time of a ``count``-iteration loop walked only twice.

    The first iteration may differ from the steady state (bank timing
    history carried in from before the loop), so callers walk the body
    twice and the remaining ``count - 2`` iterations each advance time
    by the steady-state delta.
    """
    steady_ns = after_second - after_first
    return after_second + (count - 2) * steady_ns
