"""Programmable DRAM testing infrastructure (DRAM Bender / SoftMC analog).

The paper drives real chips with an FPGA that executes arbitrary DRAM
command sequences at 1.5 ns granularity with refresh disabled (§3.1).
This package provides the same capability against the behavioral device:

* :mod:`repro.bender.program` — command IR (ACT/PRE/WAIT/FILL/READ, loops),
* :mod:`repro.bender.builder` — access-pattern builders (single-sided,
  double-sided, RowPress-ONOFF),
* :mod:`repro.bender.executor` — timing-checked execution with a fast bulk
  path for high-iteration hammer loops,
* :mod:`repro.bender.isa` — the packed 32-bit payload ISA behind the
  unified ``compile_program(...)`` / ``execute(...)`` surface,
* :mod:`repro.bender.temperature` — heater-pad + PID controller model,
* :mod:`repro.bender.infrastructure` — the full test bench.

The one blessed execution surface is *compile once, execute many*::

    payload = compile_program(program)      # -> Payload (packed words)
    result = execute(payload, device)       # loop-summarized execution

``ProgramExecutor.run`` and ``TestingInfrastructure.run`` survive only
as :class:`DeprecationWarning` shims over that pair.
"""

from repro.bender.program import Act, FillRow, Loop, Pre, Program, ReadRow, Wait
from repro.bender.assembly import AssemblyError, format_program, parse_program
from repro.bender.builder import (
    double_sided_pattern,
    onoff_pattern,
    round_to_command_period,
    single_sided_pattern,
)
from repro.bender.executor import ExecutionResult, ProgramExecutor, RowRead, TimingViolation
from repro.bender.isa import CompileError, Payload, compile_program, disassemble, execute
from repro.bender.temperature import TemperatureController
from repro.bender.infrastructure import TestingInfrastructure

__all__ = [
    "Act",
    "Pre",
    "Wait",
    "FillRow",
    "ReadRow",
    "Loop",
    "Program",
    "single_sided_pattern",
    "double_sided_pattern",
    "onoff_pattern",
    "round_to_command_period",
    "ProgramExecutor",
    "ExecutionResult",
    "RowRead",
    "TimingViolation",
    "compile_program",
    "execute",
    "Payload",
    "CompileError",
    "disassemble",
    "TemperatureController",
    "TestingInfrastructure",
    "parse_program",
    "format_program",
    "AssemblyError",
]
