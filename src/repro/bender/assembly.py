"""Textual assembly for DRAM test programs (DRAM Bender ISA style).

DRAM Bender programs are written in a small instruction set and shipped
to the FPGA; this module provides the equivalent human-readable format
for :class:`repro.bender.program.Program`, so test programs can be stored
in files, diffed, and replayed — like the paper artifact's program
sources.

Syntax (one instruction per line, ``#`` comments)::

    fill   r=<rank> b=<bank> row=<row> data=0xAA
    act    r=0 b=1 row=100
    wait   7800
    pre    r=0 b=1
    read   r=0 b=1 row=101
    loop   1000
      act  r=0 b=1 row=100
      wait 36
      pre  r=0 b=1
      wait 15
    endloop
"""

from __future__ import annotations

from repro.dram.geometry import RowAddress
from repro.bender.program import Act, FillRow, Instruction, Loop, Pre, Program, ReadRow, Wait


class AssemblyError(ValueError):
    """Malformed program text."""


def _parse_fields(tokens: list[str], line_number: int) -> dict[str, str]:
    fields = {}
    for token in tokens:
        if "=" not in token:
            raise AssemblyError(f"line {line_number}: expected key=value, got {token!r}")
        key, value = token.split("=", 1)
        fields[key] = value
    return fields


def _parse_int(value: str) -> int:
    return int(value, 16) if value.lower().startswith("0x") else int(value)


def parse_program(text: str) -> Program:
    """Parse assembly text into a :class:`Program`."""
    stack: list[tuple[int | None, list[Instruction]]] = [(None, [])]
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        op, *tokens = line.split()
        op = op.lower()
        if op == "loop":
            if len(tokens) != 1:
                raise AssemblyError(f"line {line_number}: loop takes one count")
            stack.append((_parse_int(tokens[0]), []))
            continue
        if op == "endloop":
            if len(stack) == 1:
                raise AssemblyError(f"line {line_number}: endloop without loop")
            count, body = stack.pop()
            stack[-1][1].append(Loop(count, tuple(body)))
            continue
        if op == "wait":
            if len(tokens) != 1:
                raise AssemblyError(f"line {line_number}: wait takes a duration")
            stack[-1][1].append(Wait(float(tokens[0])))
            continue
        fields = _parse_fields(tokens, line_number)
        try:
            if op == "act":
                address = RowAddress(
                    _parse_int(fields["r"]), _parse_int(fields["b"]),
                    _parse_int(fields["row"]),
                )
                stack[-1][1].append(Act(address))
            elif op == "pre":
                stack[-1][1].append(Pre(_parse_int(fields["r"]), _parse_int(fields["b"])))
            elif op == "fill":
                address = RowAddress(
                    _parse_int(fields["r"]), _parse_int(fields["b"]),
                    _parse_int(fields["row"]),
                )
                stack[-1][1].append(FillRow(address, _parse_int(fields["data"])))
            elif op == "read":
                address = RowAddress(
                    _parse_int(fields["r"]), _parse_int(fields["b"]),
                    _parse_int(fields["row"]),
                )
                stack[-1][1].append(ReadRow(address))
            else:
                raise AssemblyError(f"line {line_number}: unknown op {op!r}")
        except KeyError as error:
            raise AssemblyError(
                f"line {line_number}: missing field {error.args[0]!r} for {op}"
            ) from error
    if len(stack) != 1:
        raise AssemblyError("unterminated loop")
    return Program(stack[0][1])


def _format_instruction(instruction: Instruction, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(instruction, Wait):
        # float repr preserves full precision across the roundtrip
        return [f"{pad}wait {instruction.duration!r}"]
    if isinstance(instruction, Act):
        address = instruction.address
        return [f"{pad}act r={address.rank} b={address.bank} row={address.row}"]
    if isinstance(instruction, Pre):
        return [f"{pad}pre r={instruction.rank} b={instruction.bank}"]
    if isinstance(instruction, FillRow):
        address = instruction.address
        return [
            f"{pad}fill r={address.rank} b={address.bank} row={address.row} "
            f"data=0x{instruction.byte_value:02X}"
        ]
    if isinstance(instruction, ReadRow):
        address = instruction.address
        return [f"{pad}read r={address.rank} b={address.bank} row={address.row}"]
    if isinstance(instruction, Loop):
        lines = [f"{pad}loop {instruction.count}"]
        for inner in instruction.body:
            lines.extend(_format_instruction(inner, indent + 1))
        lines.append(f"{pad}endloop")
        return lines
    raise TypeError(f"unknown instruction {instruction!r}")


def format_program(program: Program) -> str:
    """Render a :class:`Program` as assembly text."""
    lines: list[str] = []
    for instruction in program:
        lines.extend(_format_instruction(instruction, 0))
    return "\n".join(lines) + "\n"
