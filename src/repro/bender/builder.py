"""Access-pattern builders (Figs. 5, 16, 21 of the paper).

All builders round durations up to the command-bus period (1.5 ns in the
paper's infrastructure) and respect the DRAM timing minima, mirroring how
the paper's DRAM Bender programs are generated.
"""

from __future__ import annotations

import math

from repro import units
from repro.dram.geometry import RowAddress
from repro.dram.timing import DDR4_3200W, TimingParameters
from repro.bender.program import Act, Instruction, Loop, Pre, Program, Wait


def round_to_command_period(
    duration: float, timing: TimingParameters = DDR4_3200W
) -> float:
    """Round a duration up to the next command-bus slot (1.5 ns)."""
    period = timing.command_period
    return math.ceil(duration / period - 1e-9) * period


def _episode(
    address: RowAddress, t_on: float, t_off: float, timing: TimingParameters
) -> list[Instruction]:
    """One ACT -> wait(t_on) -> PRE -> wait(t_off) episode."""
    if t_on < timing.tRAS:
        raise ValueError(
            f"t_AggON {units.format_time(t_on)} below tRAS "
            f"{units.format_time(timing.tRAS)}"
        )
    if t_off < timing.tRP:
        raise ValueError(
            f"t_AggOFF {units.format_time(t_off)} below tRP "
            f"{units.format_time(timing.tRP)}"
        )
    return [
        Act(address),
        Wait(round_to_command_period(t_on, timing)),
        Pre(address.rank, address.bank),
        Wait(round_to_command_period(t_off, timing)),
    ]


def single_sided_pattern(
    aggressor: RowAddress,
    t_aggon: float,
    count: int,
    timing: TimingParameters = DDR4_3200W,
) -> Program:
    """Single-sided RowPress pattern (Fig. 5).

    ``t_aggon = tRAS`` makes this the conventional single-sided RowHammer
    pattern (the row is closed as soon as the specification allows).
    """
    body = _episode(aggressor, t_aggon, timing.tRP, timing)
    return Program([Loop(count, tuple(body))])


def double_sided_pattern(
    aggressor_low: RowAddress,
    aggressor_high: RowAddress,
    t_aggon: float,
    total_count: int,
    timing: TimingParameters = DDR4_3200W,
) -> Program:
    """Double-sided RowPress pattern (Fig. 16).

    Every other activation of the single-sided pattern targets the second
    aggressor; ``total_count`` counts *total* aggressor activations.
    """
    if aggressor_low.rank != aggressor_high.rank or aggressor_low.bank != aggressor_high.bank:
        raise ValueError("double-sided aggressors must share a bank")
    body = _episode(aggressor_low, t_aggon, timing.tRP, timing) + _episode(
        aggressor_high, t_aggon, timing.tRP, timing
    )
    pairs, leftover = divmod(total_count, 2)
    program = Program([Loop(pairs, tuple(body))])
    if leftover:
        program.extend(_episode(aggressor_low, t_aggon, timing.tRP, timing))
    return program


def onoff_pattern(
    aggressors: list[RowAddress],
    t_aggon: float,
    t_aggoff: float,
    count_per_aggressor: int,
    timing: TimingParameters = DDR4_3200W,
) -> Program:
    """RowPress-ONOFF pattern (Fig. 21): explicit on- and off-times.

    With one aggressor this matches the single-sided ONOFF experiment; with
    two adjacent-to-one-victim aggressors, the double-sided one.  The
    activation interval is ``t_A2A = t_aggon + t_aggoff`` per aggressor.
    """
    if not aggressors:
        raise ValueError("need at least one aggressor")
    body: list[Instruction] = []
    for aggressor in aggressors:
        body.extend(_episode(aggressor, t_aggon, t_aggoff, timing))
    return Program([Loop(count_per_aggressor, tuple(body))])
