"""The full DRAM testing bench (Fig. 4 of the paper).

Couples a module under test, a program executor, and the temperature
controller into one object that characterization code drives:

* refresh is never issued (disabled, like the paper's methodology),
* programs longer than the refresh window are rejected so retention
  failures cannot contaminate read-disturb results,
* temperature changes settle through the PID model and are then applied
  to the device.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro import units
from repro.dram.module import DramModule
from repro.bender.executor import ExecutionResult, ProgramExecutor
from repro.bender.isa import Payload, compile_program
from repro.bender.program import Program
from repro.bender.temperature import TemperatureController
from repro.obs import NULL_OBSERVER, Observer


@dataclass
class BenchLog:
    """Bookkeeping of one infrastructure session."""

    programs_run: int = 0
    total_activations: int = 0
    settle_events: list[tuple[float, float]] = None  # (target, settle seconds)

    def __post_init__(self) -> None:
        if self.settle_events is None:
            self.settle_events = []


class TestingInfrastructure:
    """Host machine + FPGA board + thermal rig, as one test bench."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        module: DramModule,
        controller: TemperatureController | None = None,
        enforce_refresh_window: bool = True,
        observer: Observer | None = None,
    ) -> None:
        self.module = module
        self.observer = observer or NULL_OBSERVER
        self.executor = ProgramExecutor(module.device, observer=self.observer)
        self.controller = controller or TemperatureController()
        self.enforce_refresh_window = enforce_refresh_window
        self.log = BenchLog()
        # Align the thermal model with the device's initial temperature.
        self.controller.plant.temperature_c = module.device.temperature_c
        self.controller.setpoint_c = module.device.temperature_c

    @property
    def temperature_c(self) -> float:
        """Current chip temperature."""
        return self.module.device.temperature_c

    def set_temperature(self, target_c: float, tolerance_c: float = 0.5) -> float:
        """Settle the rig at ``target_c``; returns settle time in seconds."""
        settle_s = self.controller.settle(target_c, tolerance_c)
        # Once settled, the device runs at the (controlled) set point.
        self.module.device.set_temperature(target_c)
        self.log.settle_events.append((target_c, settle_s))
        self.observer.metrics.counter("bench.settle_events").inc()
        self.observer.metrics.gauge("bench.temperature_c").set(target_c)
        return settle_s

    def execute(self, payload: Payload, start_time: float = 0.0) -> ExecutionResult:
        """Execute a compiled payload with refresh disabled."""
        if self.enforce_refresh_window:
            duration = payload.duration_ns
            if duration > units.EXPERIMENT_BUDGET:
                raise ValueError(
                    f"program duration {units.format_time(duration)} exceeds the "
                    f"{units.format_time(units.EXPERIMENT_BUDGET)} experiment budget "
                    "(would overlap retention failures)"
                )
        result = self.executor.execute_payload(payload, start_time)
        self.log.programs_run += 1
        self.log.total_activations += result.activations
        return result

    def run(self, program: Program, start_time: float = 0.0) -> ExecutionResult:
        """Deprecated spelling of :meth:`execute`.

        .. deprecated::
            Compile once and execute the payload instead::

                bench.execute(repro.bender.compile_program(program))
        """
        warnings.warn(
            "TestingInfrastructure.run(program, ...) is deprecated; compile "
            "the program with repro.bender.compile_program(...) and run it "
            "via TestingInfrastructure.execute(payload, ...)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute(
            compile_program(program, self.module.device.timing), start_time
        )

    def fresh_experiment(self) -> None:
        """Clear accumulated disturbance between independent experiments."""
        self.module.device.reset_disturbance()
