"""Heater-pad + PID temperature-controller model (MaxWell FT200 analog).

The paper clamps chip temperature with heater pads driven by a PID
controller (§3.1).  Only the settled temperature matters to the
experiments, but the controller is modeled as a real discrete PID loop on
a first-order thermal plant so the infrastructure can report settling
behavior (and tests can exercise over/undershoot).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ThermalPlant:
    """First-order thermal model of the DRAM chip + heater pad stack."""

    ambient_c: float = 25.0
    temperature_c: float = 25.0
    #: Temperature rise per unit heater power at equilibrium (degC).
    heater_gain: float = 80.0
    #: Thermal time constant (seconds).
    time_constant_s: float = 12.0

    def step(self, power: float, dt_s: float) -> float:
        """Advance the plant ``dt_s`` seconds with heater ``power`` in [0,1]."""
        power = min(max(power, 0.0), 1.0)
        target = self.ambient_c + self.heater_gain * power
        alpha = dt_s / self.time_constant_s
        self.temperature_c += alpha * (target - self.temperature_c)
        return self.temperature_c


class TemperatureController:
    """Discrete PID loop holding the chip at a set point."""

    def __init__(
        self,
        plant: ThermalPlant | None = None,
        kp: float = 0.08,
        ki: float = 0.02,
        kd: float = 0.05,
        period_s: float = 0.5,
    ) -> None:
        self.plant = plant or ThermalPlant()
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.period_s = period_s
        self.setpoint_c = self.plant.temperature_c
        self._integral = 0.0
        self._last_error = 0.0

    @property
    def temperature_c(self) -> float:
        """Current chip temperature."""
        return self.plant.temperature_c

    def set_target(self, setpoint_c: float) -> None:
        """Change the set point (does not advance time)."""
        if not self.plant.ambient_c <= setpoint_c <= self.plant.ambient_c + self.plant.heater_gain:
            raise ValueError(
                f"set point {setpoint_c} outside achievable range "
                f"[{self.plant.ambient_c}, {self.plant.ambient_c + self.plant.heater_gain}]"
            )
        self.setpoint_c = setpoint_c
        self._integral = 0.0
        self._last_error = self.setpoint_c - self.plant.temperature_c

    def step(self) -> float:
        """One control period; returns the new temperature."""
        error = self.setpoint_c - self.plant.temperature_c
        self._integral += error * self.period_s
        self._integral = min(max(self._integral, -50.0), 50.0)  # anti-windup
        derivative = (error - self._last_error) / self.period_s
        self._last_error = error
        power = self.kp * error + self.ki * self._integral + self.kd * derivative
        return self.plant.step(power, self.period_s)

    def settle(self, setpoint_c: float, tolerance_c: float = 0.5, max_s: float = 3600.0) -> float:
        """Drive to ``setpoint_c``; returns the settling time in seconds.

        Settled means staying within ``tolerance_c`` for 30 consecutive
        control periods.  Raises :class:`RuntimeError` on timeout.
        """
        self.set_target(setpoint_c)
        elapsed = 0.0
        stable = 0
        required = 30
        while elapsed < max_s:
            self.step()
            elapsed += self.period_s
            if abs(self.plant.temperature_c - setpoint_c) <= tolerance_c:
                stable += 1
                if stable >= required:
                    return elapsed
            else:
                stable = 0
        raise RuntimeError(f"temperature did not settle at {setpoint_c} degC")
