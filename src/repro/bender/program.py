"""Command IR for DRAM test programs.

A :class:`Program` is a sequence of instructions executed with explicit
nanosecond timing.  ``Loop`` repeats a body; the executor recognizes
steady-state loops (no fills/reads inside) and applies their disturbance
in bulk, so characterization programs with hundreds of thousands of
aggressor activations run in constant time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro import units
from repro.dram.geometry import RowAddress


@dataclass(frozen=True)
class Act:
    """Open a row (ACT)."""

    address: RowAddress


@dataclass(frozen=True)
class Pre:
    """Close the open row of a bank (PRE)."""

    rank: int
    bank: int


@dataclass(frozen=True)
class Wait:
    """Advance time by ``duration`` nanoseconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(
                "wait duration must be non-negative, got "
                f"{self.duration!r} ({units.format_time(self.duration)})"
            )


@dataclass(frozen=True)
class FillRow:
    """Write a repeated byte value into a whole row (initialization)."""

    address: RowAddress
    byte_value: int

    def __post_init__(self) -> None:
        if not 0 <= self.byte_value <= 0xFF:
            raise ValueError("byte value out of range")


@dataclass(frozen=True)
class ReadRow:
    """Sense a full row and report its contents (and new bitflips)."""

    address: RowAddress


@dataclass(frozen=True)
class Loop:
    """Repeat ``body`` ``count`` times."""

    count: int
    body: tuple["Instruction", ...]

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(
                f"loop count must be non-negative, got {self.count!r} "
                f"(body duration {units.format_time(_duration(self.body))})"
            )

    @property
    def is_steady(self) -> bool:
        """Whether the body qualifies for bulk execution (commands only)."""
        return all(isinstance(instr, (Act, Pre, Wait)) for instr in self.body)


Instruction = Union[Act, Pre, Wait, FillRow, ReadRow, Loop]


@dataclass
class Program:
    """An executable DRAM test program."""

    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instruction: Instruction) -> "Program":
        """Add one instruction (chainable)."""
        self.instructions.append(instruction)
        return self

    def extend(self, instructions: list[Instruction]) -> "Program":
        """Add several instructions (chainable)."""
        self.instructions.extend(instructions)
        return self

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def duration(self) -> float:
        """Wall-clock lower bound of the program in nanoseconds.

        Counts ``Wait`` durations only (command slots themselves are folded
        into the waits the builders emit), with loops multiplied out.
        """
        return _duration(self.instructions)


def _duration(instructions: tuple[Instruction, ...] | list[Instruction]) -> float:
    total = 0.0
    for instruction in instructions:
        if isinstance(instruction, Wait):
            total += instruction.duration
        elif isinstance(instruction, Loop):
            total += instruction.count * _duration(instruction.body)
    return total
