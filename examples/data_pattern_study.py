"""Data-pattern sensitivity study (§5.3, Fig. 19).

Which data pattern is the most effective at inducing RowPress bitflips?
Measures ACmin for all six Table 2 patterns at three t_AggON points and
two temperatures on a die with strong pattern effects (Samsung 8Gb
B-die), normalized to the checkerboard baseline.

Run:  python examples/data_pattern_study.py [module_id]
"""

import sys

from repro import units
from repro.analysis.tables import format_table
from repro.bender import TestingInfrastructure
from repro.characterization import AcminSearch
from repro.characterization.patterns import ExperimentConfig, RowSite
from repro.dram import build_module
from repro.dram.datapattern import DataPattern
from repro.dram.geometry import Geometry

PATTERNS = [
    DataPattern.CHECKERBOARD,
    DataPattern.CHECKERBOARD_I,
    DataPattern.ROWSTRIPE,
    DataPattern.ROWSTRIPE_I,
    DataPattern.COLSTRIPE,
    DataPattern.COLSTRIPE_I,
]
POINTS = (36.0, 636.0, units.TREFI)
SITES = [RowSite(0, 1, 24 + 24 * i) for i in range(3)]


def main(module_id: str = "S0") -> None:
    geometry = Geometry(
        ranks=1, bank_groups=1, banks_per_group=2, rows_per_bank=128, row_bits=65536
    )
    bench = TestingInfrastructure(build_module(module_id, geometry=geometry))
    print(f"data patterns on {module_id} ({bench.module.info.die_key})\n")
    for temperature in (50.0, 80.0):
        bench.module.device.set_temperature(temperature)
        baseline = {}
        grid = {}
        for pattern in PATTERNS:
            searcher = AcminSearch(infra=bench, config=ExperimentConfig(data=pattern))
            for t_aggon in POINTS:
                values = [searcher.search(site, t_aggon) for site in SITES]
                values = [v for v in values if v is not None]
                grid[(pattern, t_aggon)] = min(values) if values else None
                if pattern is DataPattern.CHECKERBOARD:
                    baseline[t_aggon] = grid[(pattern, t_aggon)]
        rows = []
        for pattern in PATTERNS:
            cells = []
            for t_aggon in POINTS:
                value = grid[(pattern, t_aggon)]
                base = baseline[t_aggon]
                if value is None:
                    cells.append("NoFlip")
                elif base:
                    cells.append(f"{value / base:.2f}")
                else:
                    cells.append("-")
            rows.append([pattern.value] + cells)
        print(
            format_table(
                ["pattern"] + [units.format_time(t) for t in POINTS],
                rows,
                f"ACmin normalized to CheckerBoard @ {temperature:.0f}C "
                "(<1 = more effective)",
            )
        )
        print()
    print("RowStripe hammers best but cannot press at all on this die;")
    print("ColStripeI presses best at 50C yet worst at 80C (Obsv. 14-15).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "S0")
