"""Quickstart: measure how RowPress amplifies read disturbance.

Builds one calibrated DDR4 module (Samsung 8Gb D-die), places it on the
testing infrastructure, and measures ACmin — the minimum number of
aggressor-row activations needed to flip a bit — as the row-open time
(t_AggON) grows from the RowHammer minimum (36 ns) to 30 ms.

Run:  python examples/quickstart.py
"""

from repro import units
from repro.bender import TestingInfrastructure
from repro.characterization import find_acmin
from repro.characterization.patterns import RowSite
from repro.dram import build_module
from repro.dram.geometry import Geometry


def main() -> None:
    geometry = Geometry(
        ranks=1, bank_groups=1, banks_per_group=2, rows_per_bank=256, row_bits=65536
    )
    module = build_module("S3", geometry=geometry)
    bench = TestingInfrastructure(module)
    bench.set_temperature(80.0)
    site = RowSite(rank=0, bank=1, row=100)

    print(f"module: {module.info.module_id} ({module.info.die_key})")
    print(f"temperature: {bench.temperature_c:.0f} degC")
    print()
    print(f"{'t_AggON':>10}  {'ACmin':>9}  note")
    baseline = None
    for t_aggon in (36.0, 636.0, units.TREFI, 9 * units.TREFI, 30 * units.MS):
        acmin = find_acmin(bench, site, t_aggon)
        if acmin is None:
            print(f"{units.format_time(t_aggon):>10}  {'-':>9}  no bitflip in budget")
            continue
        if baseline is None:
            baseline = acmin
            note = "conventional RowHammer"
        else:
            note = f"{baseline / acmin:.0f}x fewer activations"
        print(f"{units.format_time(t_aggon):>10}  {acmin:>9,}  {note}")
    print()
    print("RowPress: keeping the row open longer turns tens of thousands of")
    print("activations into a handful (Obsv. 1-2 of the paper).")


if __name__ == "__main__":
    main()
