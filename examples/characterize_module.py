"""Characterize one DRAM module like the paper's §4-5.

Runs a compact version of the characterization campaign on a chosen
catalog module: the ACmin-vs-t_AggON sweep (with the log-log trend line),
the t_AggONmin-vs-AC sweep, bitflip directionality, temperature
sensitivity, and the RowPress-ONOFF grid — all printed as text tables
and ASCII sparklines.

Run:  python examples/characterize_module.py [module_id]
"""

import sys

from repro import units
from repro.analysis.figures import ascii_series
from repro.analysis.tables import format_table
from repro.bender import TestingInfrastructure
from repro.characterization import AcminSearch, find_taggonmin, measure_ber
from repro.characterization.ber import onoff_sweep
from repro.characterization.patterns import AccessPattern, ExperimentConfig, RowSite
from repro.characterization.results import loglog_slope
from repro.dram import build_module
from repro.dram.geometry import Geometry

SWEEP = (36.0, 186.0, 636.0, units.TREFI, 30 * units.US, 9 * units.TREFI, 6 * units.MS)
SITES = [RowSite(0, 1, 24 + 24 * i) for i in range(4)]


def main(module_id: str = "S3") -> None:
    geometry = Geometry(
        ranks=1, bank_groups=1, banks_per_group=2, rows_per_bank=192, row_bits=65536
    )
    bench = TestingInfrastructure(build_module(module_id, geometry=geometry))
    print(f"=== characterizing {module_id} ({bench.module.info.die_key}) ===\n")

    # --- ACmin vs t_AggON (Fig. 6) ---
    searcher = AcminSearch(infra=bench, config=ExperimentConfig())
    curve = []
    for t_aggon in SWEEP:
        values = [searcher.search(site, t_aggon) for site in SITES]
        values = [v for v in values if v is not None]
        curve.append((t_aggon, min(values) if values else None))
    rows = [[units.format_time(t), f"{v:,}" if v else "-"] for t, v in curve]
    print(format_table(["t_AggON", "ACmin (min over rows)"], rows, "ACmin sweep @50C"))
    print(ascii_series(curve, label="ACmin (log scale)"))
    tail = [(t, v) for t, v in curve if v and t >= units.TREFI]
    if len(tail) >= 3:
        print(f"log-log slope beyond 7.8us: {loglog_slope(tail):+.3f} (paper ~ -1.01)\n")

    # --- t_AggONmin vs AC (Fig. 9) ---
    rows = []
    for count in (1, 10, 100, 1000):
        value = find_taggonmin(bench, SITES[0], activation_count=count)
        rows.append([count, units.format_time(value) if value else "-"])
    print(format_table(["AC", "t_AggONmin"], rows, "t_AggONmin sweep @50C"))
    print()

    # --- directionality (Fig. 12) ---
    hammer = measure_ber(bench, SITES[1], t_aggon=36.0)
    press = measure_ber(bench, SITES[2], t_aggon=units.TREFI)
    rows = [
        ["RowHammer (36ns)", hammer.bitflips,
         f"{hammer.one_to_zero / hammer.bitflips:.0%}" if hammer.bitflips else "-"],
        ["RowPress (7.8us)", press.bitflips,
         f"{press.one_to_zero / press.bitflips:.0%}" if press.bitflips else "-"],
    ]
    print(format_table(["mechanism", "bitflips @ACmax", "1->0 fraction"], rows,
                       "Bitflip directionality (checkerboard)"))
    print()

    # --- temperature (Fig. 13) ---
    bench.module.device.set_temperature(80.0)
    hot = [searcher.search(site, units.TREFI) for site in SITES]
    hot = [v for v in hot if v is not None]
    bench.module.device.set_temperature(50.0)
    cool = [v for _, v in curve if v is not None]
    at_trefi = dict(curve).get(units.TREFI)
    if hot and at_trefi:
        print(f"ACmin @7.8us: 50C={at_trefi:,}  80C={min(hot):,} "
              f"(ratio {min(hot) / at_trefi:.2f}; Obsv. 9)\n")

    # --- ONOFF grid (Fig. 22) ---
    grid = onoff_sweep(bench, SITES[3], [240.0, 6000.0], [0.0, 0.5, 1.0],
                       access=AccessPattern.SINGLE_SIDED)
    rows = [
        [f"{delta:.0f}ns"] + [f"{grid[(delta, f)].bitflips}" for f in (0.0, 0.5, 1.0)]
        for delta in (240.0, 6000.0)
    ]
    print(format_table(["dt_A2A", "0% on", "50% on", "100% on"], rows,
                       "RowPress-ONOFF bitflips (single-sided, 50C)"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "S3")
