"""RowPress on a "real system": the paper's §6 demonstration.

Assembles the demo platform (Comet Lake-like CPU, dual-rank DDR4 DIMM
with in-DRAM TRR), verifies that the memory controller keeps rows open
across cache-block reads (Fig. 24), then runs Algorithm 1: double-sided
aggressor activations with NUM_READS cache-block reads per activation and
dummy rows to slip past TRR.

Run:  python examples/real_system_attack.py
"""

from collections import Counter

import numpy as np

from repro.analysis.figures import histogram_ascii
from repro.analysis.tables import format_table
from repro.dram.geometry import RowAddress
from repro.system import AttackParameters, build_demo_system, run_rowpress_attack
from repro.system.demo import measure_access_latencies, plan_iteration


def main() -> None:
    system = build_demo_system(rows_per_bank=4096)
    print("demo platform: i5-10400-like CPU + "
          f"{system.module.info.dimm_part} ({system.module.info.die_key}), TRR on\n")

    # --- Fig. 24: verify the controller keeps rows open ---
    print("verifying t_AggON increase (first vs remaining cache blocks)...")
    first, rest = measure_access_latencies(system, trials=150, row=60, conflict_row=700)
    print(histogram_ascii(first, label="  first block (ACT)"))
    print(histogram_ascii(rest, label="  remaining blocks"))
    print(f"  median gap: {np.median(first) - np.median(rest):.0f} TSC cycles\n")

    # --- Algorithm 1 across the attack grid ---
    victims = [RowAddress(0, 1, 16 + 8 * i) for i in range(120)]
    rows = []
    for acts in (1, 2, 3, 4):
        for reads in (1, 32, 64):
            params = AttackParameters(
                num_reads=reads, num_aggr_acts=acts, num_iterations=400_000
            )
            schedule = plan_iteration(system, params)
            result = run_rowpress_attack(system, victims, params, max_windows=2)
            mechanisms = Counter(f.mechanism for f in result.bitflips)
            rows.append(
                [
                    acts,
                    reads,
                    f"{schedule.t_on:.0f}ns",
                    "yes" if schedule.fits_trefi else "NO",
                    result.total_bitflips,
                    result.rows_with_bitflips,
                    mechanisms.get("press", 0),
                ]
            )
    print(
        format_table(
            ["NUM_AGGR_ACTS", "NUM_READS", "t_AggON", "fits tREFI",
             "bitflips", "rows", "press flips"],
            rows,
            f"Algorithm 1 against {len(victims)} victim rows",
        )
    )
    print()
    print("NUM_READS=1 is conventional (TRR-bypassing) RowHammer: nearly no")
    print("bitflips.  Reading many cache blocks per activation keeps the")
    print("row open longer -> RowPress flips bits despite TRR (Takeaway 6).")


if __name__ == "__main__":
    main()
