"""Mitigating RowPress: the §7 trade-off study.

Shows why the naive fixes fail and how the paper's adaptation works:

1. the minimally-open-row policy wrecks row-buffer locality (App. D.1)
   and turns benign workloads into RowHammer-like activation patterns;
2. Graphene alone (RowHammer-only) leaves a RowPress attacker a large
   equivalent-activation budget;
3. Graphene-RP = t_mro cap + shrunk threshold T'_RH mitigates both at a
   small performance cost.

Run:  python examples/mitigation_tradeoff.py
"""

from repro.analysis.tables import format_table
from repro.mitigation import VictimExposureTracker, adapt_graphene
from repro.mitigation.graphene import Graphene
from repro.sim import ClosedRowPolicy, OpenRowPolicy, Simulator
from repro.sim.dram_model import DramState
from repro.sim.memctrl import MemoryController
from repro.sim.request import Request

WORKLOADS = ["462.libquantum", "429.mcf", "510.parest"]
REQUESTS = 6000


def policy_study() -> None:
    rows = []
    for name in WORKLOADS:
        open_run = Simulator([name], requests_per_core=REQUESTS,
                             policy=OpenRowPolicy()).run()
        closed_run = Simulator([name], requests_per_core=REQUESTS,
                               policy=ClosedRowPolicy()).run()
        config = adapt_graphene(t_rh=1000, t_mro=96.0)
        adapted_run = Simulator([name], requests_per_core=REQUESTS,
                                policy=config.policy,
                                mitigation=config.mitigation).run()
        rows.append(
            [
                name,
                f"{open_run.ipc_of(0):.3f}",
                f"{closed_run.ipc_of(0) / open_run.ipc_of(0):.2f}",
                f"{adapted_run.ipc_of(0) / open_run.ipc_of(0):.2f}",
                closed_run.stats.max_activations_any_row(),
            ]
        )
    print(
        format_table(
            ["workload", "open IPC", "minimally-open (norm.)",
             "Graphene-RP@96ns (norm.)", "max row acts (min-open)"],
            rows,
            "Row policies: performance and activation exposure",
        )
    )
    print()


def security_study() -> None:
    def attack(mitigation, policy, dose_ratio):
        mc = MemoryController(DramState(ranks=1, banks_per_rank=2),
                              policy=policy, mitigation=mitigation)
        mc.exposure_tracker = VictimExposureTracker(dose_ratio=dose_ratio)
        time = 0.0
        for _ in range(2500):
            for row in (100, 164):
                mc.enqueue(Request(core_id=0, rank=0, bank=0, row=row, column=0), time)
                outcome = mc.serve((0, 0), time)
                while isinstance(outcome, float):
                    outcome = mc.serve((0, 0), outcome)
                time += 200.0
        return mc.exposure_tracker.max_exposure_seen

    config = adapt_graphene(t_rh=1000, t_mro=96.0)
    rows = [
        ["Graphene only, attacker holds rows open ~7.8us",
         f"{attack(Graphene(threshold=333), OpenRowPolicy(), 20.0):.0f}", "BROKEN"],
        ["Graphene-RP @96ns (T'=724, row force-closed)",
         f"{attack(config.mitigation, config.policy, 1000 / 724):.0f}", "secure"],
    ]
    print(
        format_table(
            ["configuration", "max equivalent activations on a victim",
             "vs T_RH=1000"],
            rows,
            "Security: equivalent activation exposure between refreshes",
        )
    )


def main() -> None:
    policy_study()
    security_study()


if __name__ == "__main__":
    main()
