"""Drive the performance simulator from Ramulator trace files.

Shows the trace-file pipeline: export a synthetic workload as a classic
Ramulator CPU trace, load it back, and simulate it under different row
policies — the workflow a user with real SPEC traces would follow.

Run:  python examples/trace_driven_sim.py [trace_file]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis.tables import format_table
from repro.sim import (
    ClosedRowPolicy,
    OpenRowPolicy,
    Simulator,
    TimeCappedPolicy,
    export_synthetic,
    load_trace,
)
from repro.sim.core import CoreModel
from repro.sim.trace import WORKLOADS


def simulate_trace(stream, policy):
    """Run one loaded trace stream under a row policy."""
    sim = Simulator(["429.mcf"], requests_per_core=1)  # shell; core replaced
    sim.cores = [CoreModel(core_id=0, stream=stream)]
    sim.mc.policy = policy
    return sim.run()


def main(trace_path: str | None = None) -> None:
    if trace_path is None:
        temp = Path(tempfile.gettempdir()) / "rowpress_demo.trace"
        print("no trace given - exporting a synthetic 510.parest trace ...")
        export_synthetic(temp, WORKLOADS["510.parest"], count=6000)
        trace_path = str(temp)
    stream = load_trace(trace_path)
    print(f"loaded {len(stream)} requests from {trace_path}\n")
    rows = []
    for policy, label in (
        (OpenRowPolicy(), "open-row"),
        (TimeCappedPolicy(t_mro=96.0), "t_mro = 96 ns"),
        (ClosedRowPolicy(), "minimally-open"),
    ):
        result = simulate_trace(list(stream), policy)
        rows.append(
            [
                label,
                f"{result.ipc_of(0):.3f}",
                f"{result.stats.row_hit_rate:.2f}",
                result.stats.max_activations_any_row(),
            ]
        )
    print(
        format_table(
            ["row policy", "IPC", "row-hit rate", "max per-row ACTs / tREFW"],
            rows,
            "Trace-driven row-policy comparison",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
