"""Survey the whole module fleet (a compact Table 5).

Runs a small ACmin + t_AggONmin campaign over every die revision in the
catalog (one representative module each), saves the raw records as a
campaign JSON (like the paper's open data release), and prints a
Table 5-style summary.

Run:  python examples/fleet_survey.py [output.json]
"""

import sys

from repro import units
from repro.analysis.tables import format_table
from repro.characterization import aggregate_by_die
from repro.characterization.campaign import CampaignSpec, run_campaign, save_results
from repro.characterization.runner import CharacterizationRunner
from repro.characterization.taggonmin import find_taggonmin
from repro.dram.catalog import REPRESENTATIVE_MODULES


def main(output: str | None = None) -> None:
    modules = tuple(sorted(REPRESENTATIVE_MODULES.values()))
    spec = CampaignSpec(
        name="fleet-survey",
        module_ids=modules,
        experiment="acmin",
        t_aggon_values=(36.0, units.TREFI, 9 * units.TREFI),
        sites_per_module=3,
    )
    print(f"surveying {len(modules)} representative modules ...")
    records = run_campaign(spec)
    if output:
        save_results(output, spec, records)
        print(f"raw records saved to {output}")

    runner = CharacterizationRunner(module_ids=list(modules), sites_per_module=3)
    taggonmin = {}
    for module_id in modules:
        bench = runner.bench(module_id)
        values = [
            find_taggonmin(bench, site, activation_count=1)
            for site in runner.sites(bench.module)
        ]
        values = [v for v in values if v is not None]
        taggonmin[bench.module.info.die_key] = (
            min(values) / units.MS if values else None
        )

    rows = []
    for t_aggon in spec.t_aggon_values:
        by_die = aggregate_by_die(
            [r for r in records if r.t_aggon == t_aggon], lambda r: r.acmin
        )
        for die, aggregate in by_die.items():
            if t_aggon == 36.0:
                press = taggonmin.get(die)
                rows.append(
                    [
                        die,
                        f"{aggregate.mean:,.0f}" if aggregate.mean else "-",
                        "",
                        "",
                        f"{press:.1f}ms" if press else "No Bitflip",
                    ]
                )
            else:
                for row in rows:
                    if row[0] == die:
                        column = 2 if t_aggon == units.TREFI else 3
                        row[column] = (
                            f"{aggregate.mean:,.0f}" if aggregate.mean else "-"
                        )
    print()
    print(
        format_table(
            ["die", "ACmin@36ns", "ACmin@7.8us", "ACmin@70.2us", "tAggONmin@AC=1"],
            rows,
            "Fleet survey (Table 5 style, 50C, reduced rows)",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
